"""File-backed log segments: real bytes, real ``fsync``, real survival.

One :class:`FileLogStore` owns a directory of segment files, each named
``segment-<base_lsn>.wal`` and laid out as a
:data:`~repro.logmgr.codec.FILE_MAGIC` header followed by consecutive
record frames (see :mod:`repro.logmgr.codec`).  The store is the
durability half of the :class:`~repro.logmgr.manager.LogManager`: the
manager stays the LSN authority and the in-memory read path, while the
store turns ``flush()`` into ``write``/``fsync`` against these files.

The write path is staged and **batch-granular**:

- :meth:`stage_many` buffers one encoded blob covering a whole window of
  records (an append is cheap and *volatile*); :meth:`stage` is the
  single-frame special case;
- :meth:`write_up_to` hands staged blobs to the OS in one ``write``
  per segment file (written but unsynced bytes live in the page cache —
  still volatile under the failure model);
- :meth:`sync` is the only durability point: one ``fsync`` per dirty
  file, after which everything written survives a crash.

Group commit lives one level up: the manager counts pending force
requests and calls :meth:`sync` once per batch, so N commits share one
``fsync`` — the classic group-commit trade measured by benchmark E18.

A segment that will never be written again can be **sealed** with
:meth:`seal_segment`: a 20-byte sidecar file (``<segment>.seal``)
carrying one CRC over the whole frame region.  The scan path checks it
first — one C-speed ``crc32`` pass verifies the entire file, after
which the frame walk trusts length fields and skips every per-frame
checksum.  The seal is a pure accelerator kept *outside* the segment,
so segment bytes and torn-tail semantics are byte-identical with or
without it; a missing, stale, or damaged seal silently degrades to the
per-frame CRC walk, which is also how every pre-seal segment directory
remains readable.  Seals are written without an fsync — losing one in
a crash costs a slow scan, never a record.

:meth:`crash` simulates the kernel's view of a power cut: staged blobs
vanish, and every file is truncated back to its last synced length.
The cross-process kill test does the same thing for real — ``kill -9``
discards the staging buffer with the process, and the torn-tail rule
cleans up whatever partial frame the page cache happened to flush.

Sealed segment files double as the **archive**: :meth:`archive_segment`
renames a truncated segment to ``.arch`` instead of deleting it, so log
truncation and media-recovery archiving are the same binary format.

**Concurrency contract.**  The store is safe under the manager's
locking discipline: any number of threads may :meth:`stage` (they hold
the manager mutex), while the flush path (:meth:`write_up_to` +
:meth:`sync` + :meth:`seal_segment`) is serialized by the manager's
force lock.  The store's own lock guards the staged buffer and the
handle list, so a segment rotation (``begin_segment``, called by an
appender) never races the flusher's iteration — and the ``fsync``
syscall itself runs with no lock held, so staging continues while the
disk works.  Scans ``mmap`` sealed files; the active (newest) segment
is read with an ordinary ``read`` because it is the only file whose
tail can still be truncated by a crash (a shrunk mapping would fault).
"""

from __future__ import annotations

import mmap
import os
import threading
import zlib
from pathlib import Path
from typing import NamedTuple

from repro.logmgr.codec import (
    FILE_HEADER_SIZE,
    RECORD_OVERHEAD,
    _UNSET,
    CodecError,
    LazyRecord,
    TornTail,
    decode_file_header,
    encode_file_header,
    encode_seal,
    iter_record_views,
    read_frame_at,
    verify_seal,
)
from repro.logmgr.pageindex import (
    PAGES_SUFFIX,
    SegmentPageIndex,
    index_buffer,
    parse_page_index,
)

SEGMENT_SUFFIX = ".wal"
ARCHIVE_SUFFIX = ".arch"
SEAL_SUFFIX = ".seal"


def segment_filename(base_lsn: int) -> str:
    """The canonical file name for the segment starting at ``base_lsn``."""
    return f"segment-{base_lsn:016d}{SEGMENT_SUFFIX}"


def seal_path(path: Path) -> Path:
    """The sidecar seal file for a segment/archive path (may not exist)."""
    return path.with_name(path.name + SEAL_SUFFIX)


def pages_path(path: Path) -> Path:
    """The sidecar page-index file for a segment/archive path."""
    return path.with_name(path.name + PAGES_SUFFIX)


def read_pages_blob(path: Path) -> bytes | None:
    """Raw page-index sidecar bytes for a segment/archive path, or None.
    No validation here — :func:`~repro.logmgr.pageindex.parse_page_index`
    treats any damaged or stale sidecar exactly like a missing one."""
    try:
        return pages_path(path).read_bytes()
    except OSError:
        return None


def _drop_sidecars(path: Path) -> None:
    """Remove both sidecars of a segment whose bytes changed or vanished
    (the seal and the page index share one staleness lifecycle)."""
    seal_path(path).unlink(missing_ok=True)
    pages_path(path).unlink(missing_ok=True)


def read_seal(path: Path) -> bytes | None:
    """The raw sidecar seal bytes for a segment/archive path, or None.
    No validation here — :func:`~repro.logmgr.codec.verify_seal` treats
    any damaged or stale seal exactly like a missing one."""
    try:
        return seal_path(path).read_bytes()
    except OSError:
        return None


def _map_buffer(path: Path, allow_mmap: bool = True):
    """Open ``path`` for scanning: ``(buffer, close)``.

    Prefers a read-only ``mmap`` (zero-copy: the walker slices views of
    the page cache directly); falls back to ``read()`` for empty files
    or filesystems without mmap support.  The returned ``close`` must be
    called when the scan is done (a ``finally`` in every caller).
    """
    fh = path.open("rb")
    if allow_mmap:
        try:
            buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            pass
        else:

            def close(buf=buf, fh=fh):
                buf.close()
                fh.close()

            return buf, close
    data = fh.read()
    fh.close()
    return data, lambda: None


class SegmentStats(NamedTuple):
    """One segment file summarized without materializing its records."""

    count: int
    bytes: int  # v1-equivalent frame bytes (matches LogRecord.size_bytes)
    tag_counts: dict  # payload wire tag -> record count
    checkpoint_lsns: list
    tear_offset: int | None
    tear_reason: str | None


def _stats_walk(buf, expected_base: int | None, seal: bytes | None = None) -> SegmentStats:
    """Walk a segment buffer collecting accounting statistics.

    Touches one byte per record (the payload tag) — no value decoding.
    A verified sidecar ``seal`` replaces every per-frame CRC with one
    whole-region pass.  With ``expected_base`` the walk also enforces
    LSN density, raising :class:`CodecError` on a hole (same contract
    the record-loading path has always had).  A tear ends the walk and
    is reported.
    """
    from repro.logmgr.codec import PAYLOAD_CHECKPOINT

    count = 0
    nbytes = 0
    tag_counts: dict = {}
    checkpoints: list = []
    tear_offset: int | None = None
    tear_reason: str | None = None
    sealed = verify_seal(buf, seal)
    if sealed is not None:
        views = iter_record_views(buf, end=sealed[0], verify_crc=False)
    else:
        views = iter_record_views(buf)
    checkpoint_tag = PAYLOAD_CHECKPOINT
    get_count = tag_counts.get
    try:
        for lsn, lo, hi in views:
            if expected_base is not None and lsn != expected_base + count:
                raise CodecError(
                    f"segment {expected_base} holds LSN {lsn} "
                    f"at position {count}"
                )
            tag = buf[lo]
            tag_counts[tag] = get_count(tag, 0) + 1
            if tag == checkpoint_tag:
                checkpoints.append(lsn)
            if sealed is None:
                nbytes += (hi - lo) + RECORD_OVERHEAD
            count += 1
    except TornTail as tear:
        tear_offset, tear_reason = tear.offset, tear.reason
    if sealed is not None:
        # A verified seal covers exactly the frame region, so the byte
        # total is the region length — no per-record accumulation.
        nbytes = sealed[0] - FILE_HEADER_SIZE
    return SegmentStats(count, nbytes, tag_counts, checkpoints, tear_offset, tear_reason)


def file_stats(path) -> SegmentStats:
    """Accounting statistics for one segment or archive file.

    The cold-start path folds ``.arch`` files back into the log's
    byte/type accounting; this does it without decoding a single value.
    A torn tail simply ends the walk (archives are sealed history — a
    tear here means post-hoc damage the scan tolerates, as
    :func:`iter_file_records` always has).
    """
    path = Path(path)
    buf, close = _map_buffer(path)
    try:
        decode_file_header(buf)
        return _stats_walk(buf, expected_base=None, seal=read_seal(path))
    finally:
        close()


def iter_file_records(path):
    """Decode every record of one segment or archive file, in order.

    Stands alone from any store — ``logdump`` and the cold-start path
    use it on bare paths.  Records come back as
    :class:`~repro.logmgr.codec.LazyRecord` (payloads decode on first
    touch), streamed straight off an ``mmap`` of the file.  A torn tail
    simply ends the stream (scan the views yourself to see the tear).
    """
    path = Path(path)
    buf, close = _map_buffer(path)
    try:
        decode_file_header(buf)
        sealed = verify_seal(buf, read_seal(path))
        if sealed is not None:
            for lsn, lo, hi in iter_record_views(buf, end=sealed[0], verify_crc=False):
                yield LazyRecord(lsn, buf[lo:hi])
            return
        try:
            for lsn, lo, hi in iter_record_views(buf):
                yield LazyRecord(lsn, buf[lo:hi])
        except TornTail:
            return
    finally:
        close()


class _SegmentHandle:
    """Bookkeeping for one segment file (internal to the store)."""

    __slots__ = (
        "path",
        "base_lsn",
        "fh",
        "size",
        "synced_size",
        "sealed",
        "region_crc",
        "record_count",
    )

    def __init__(self, path: Path, base_lsn: int, fh, size: int, synced_size: int):
        self.path = path
        self.base_lsn = base_lsn
        self.fh = fh  # raw (unbuffered) append handle, or None once closed
        self.size = size
        self.synced_size = synced_size
        # Sealing state.  ``region_crc``/``record_count`` are a running
        # summary of the frame region as this incarnation wrote it, so
        # sealing a segment costs zero reads; ``None`` means unknown
        # (an attached pre-existing file) and sealing falls back to one
        # read of the file.  ``sealed`` marks a sidecar written by this
        # incarnation.
        self.sealed = False
        self.region_crc: int | None = None
        self.record_count: int | None = None


class FileLogStore:
    """A directory of binary segment files with staged, batched writes."""

    def __init__(self, directory: str | os.PathLike, fsync: bool = True):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # ``fsync=False`` keeps the file layout but skips the syscall —
        # for tests and benches that want the format without the wait.
        self.fsync_enabled = fsync
        self._lock = threading.RLock()
        self._handles: list[_SegmentHandle] = []
        # Staged blobs: (last_lsn, segment base, blob, record count).
        # A blob is one frame or a whole packed window of frames.
        self._staged: list[tuple[int, int, bytes, int]] = []
        self._dir_dirty = False  # a file was created since the last sync
        # Counters surfaced through the engine metrics registry.
        self.appends = 0
        self.staged_bytes = 0
        self.frames_written = 0
        self.records_written = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.syncs = 0
        self.records_decoded = 0
        self.torn_tails = 0
        self.segments_created = 0
        self.segments_archived = 0
        self.seals_written = 0
        self.page_indexes_written = 0
        self.page_index_rebuilds = 0
        self.chain_frames_read = 0

    # ------------------------------------------------------------------
    # Attach (cold start)
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, directory: str | os.PathLike, fsync: bool = True) -> "FileLogStore":
        """Open an existing segment directory without creating anything.

        Every ``.wal`` file becomes a handle; the newest one is reopened
        for appending.  Bytes on disk at attach time are, by definition,
        the crash survivors, so ``synced_size`` starts at the file size.
        The newest file's sidecar seal (if any) is dropped: the file is
        about to take appends again, which would leave the seal stale
        anyway — it gets re-sealed at its next rotation.
        """
        store = cls(directory, fsync=fsync)
        paths = sorted(store.directory.glob(f"segment-*{SEGMENT_SUFFIX}"))
        for index, path in enumerate(paths):
            size = path.stat().st_size
            with path.open("rb") as fh:
                header = fh.read(FILE_HEADER_SIZE)
            base_lsn = decode_file_header(header)
            active = index == len(paths) - 1
            if active:
                _drop_sidecars(path)
            fh = path.open("ab", buffering=0) if active else None
            store._handles.append(_SegmentHandle(path, base_lsn, fh, size, size))
        return store

    def segment_base_lsns(self) -> list[int]:
        """Base LSNs of the (non-archived) segment files, oldest first."""
        with self._lock:
            return [handle.base_lsn for handle in self._handles]

    def is_empty(self) -> bool:
        """True when the store has no segment files yet."""
        return not self._handles

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def begin_segment(self, base_lsn: int) -> None:
        """Start a new segment file; subsequent frames route to it."""
        path = self.directory / segment_filename(base_lsn)
        fh = path.open("ab", buffering=0)
        header = encode_file_header(base_lsn)
        fh.write(header)
        with self._lock:
            handle = _SegmentHandle(path, base_lsn, fh, len(header), 0)
            handle.region_crc = 0
            handle.record_count = 0
            self._handles.append(handle)
            self.segments_created += 1
            self._dir_dirty = True

    def stage(self, lsn: int, frame: bytes) -> None:
        """Buffer one encoded frame for the current (newest) segment."""
        with self._lock:
            if not self._handles:
                raise CodecError("stage() before begin_segment()")
            self._staged.append((lsn, self._handles[-1].base_lsn, frame, 1))
            self.appends += 1
            self.staged_bytes += len(frame)

    def stage_many(self, last_lsn: int, base_lsn: int, blob, count: int) -> None:
        """Buffer one encoded batch window (``count`` records ending at
        ``last_lsn``) bound for the segment at ``base_lsn``.  The blob is
        a single wire frame; the whole window hits the file in one
        ``write`` with one CRC."""
        with self._lock:
            if not self._handles:
                raise CodecError("stage() before begin_segment()")
            self._staged.append((last_lsn, base_lsn, blob, count))
            self.appends += count
            self.staged_bytes += len(blob)

    def write_up_to(self, lsn: int) -> None:
        """Hand staged blobs whose last LSN <= ``lsn`` to the OS, in
        order, one ``write`` per touched segment file.  Written bytes
        are still volatile until :meth:`sync`.  Callers serialize on the
        manager's force lock; the store lock covers the staged-buffer
        cut so concurrent :meth:`stage` calls never lose frames."""
        with self._lock:
            if not self._staged or self._staged[0][0] > lsn:
                return
            cut = 0
            while cut < len(self._staged) and self._staged[cut][0] <= lsn:
                cut += 1
            batch, self._staged = self._staged[:cut], self._staged[cut:]
            by_base = {handle.base_lsn: handle for handle in self._handles}
            index = 0
            while index < cut:
                base = batch[index][1]
                chunk = []
                records = 0
                while index < cut and batch[index][1] == base:
                    chunk.append(batch[index][2])
                    records += batch[index][3]
                    index += 1
                handle = by_base[base]
                if handle.fh is None:
                    # Belt and braces for the stage-then-rotate race: if
                    # a sealed handle was closed with frames still bound
                    # for it, reopen rather than lose the write.
                    handle.fh = handle.path.open("ab", buffering=0)
                blob = b"".join(chunk)
                handle.fh.write(blob)
                handle.size += len(blob)
                if handle.region_crc is not None:
                    handle.region_crc = zlib.crc32(blob, handle.region_crc)
                if handle.record_count is not None:
                    handle.record_count += records
                self.frames_written += len(chunk)
                self.records_written += records
                self.bytes_written += len(blob)
                self.staged_bytes -= len(blob)

    def seal_segment(self, base_lsn: int) -> bool:
        """Seal the segment at ``base_lsn``: write its sidecar seal.

        Meant for a segment that will never take another frame (the
        manager calls this when the in-memory segment has rotated and
        every one of its records has been written) — though if more
        frames do land, the seal merely goes stale and readers ignore
        it.  For a segment this incarnation wrote, the region CRC and
        count are running state — sealing costs zero reads of the
        segment.  For an attached pre-existing file they are rebuilt
        with one read.  The sidecar is written without an fsync: losing
        it in a crash costs a slow scan, never a record.  Returns True
        when a seal was written; False when the segment is already
        sealed, unknown (archived), or still has staged frames
        outstanding (its final bytes aren't in the file yet).
        """
        with self._lock:
            try:
                handle = self._handle_for(base_lsn)
            except KeyError:
                return False
            if handle.sealed:
                return False
            if any(base == base_lsn for _, base, _, _ in self._staged):
                return False
            crc = handle.region_crc
            count = handle.record_count
            region_len = handle.size - FILE_HEADER_SIZE
        if crc is None or count is None:
            buf, close = _map_buffer(handle.path)
            try:
                decode_file_header(buf)
                crc = zlib.crc32(memoryview(buf)[FILE_HEADER_SIZE:])
                # Frames were CRC-verified when this file was attached
                # (cold start walks every segment), so a length-only
                # walk is enough to count records.
                count = sum(1 for _ in iter_record_views(buf, verify_crc=False))
            finally:
                close()
        blob = encode_seal(crc, region_len, count)
        with self._lock:
            seal_path(handle.path).write_bytes(blob)
            handle.sealed = True
            handle.region_crc = crc
            handle.record_count = count
            self.seals_written += 1
        return True

    def write_page_index(self, base_lsn: int, blob: bytes) -> None:
        """Write a segment's page-index sidecar (no fsync — losing it in
        a crash costs a rebuild scan, never a record)."""
        with self._lock:
            handle = self._handle_for(base_lsn)
            pages_path(handle.path).write_bytes(blob)
            self.page_indexes_written += 1

    def load_page_index(self, base_lsn: int) -> SegmentPageIndex | None:
        """The segment's page index from its sidecar, or None when the
        sidecar is absent, damaged, for the wrong segment, or stale
        (covers a different byte count than the file holds)."""
        with self._lock:
            handle = self._handle_for(base_lsn)
            size = handle.size
        index = parse_page_index(read_pages_blob(handle.path))
        if index is None or index.base_lsn != base_lsn:
            return None
        if index.region_len != size - FILE_HEADER_SIZE:
            return None
        return index

    def build_page_index(self, base_lsn: int) -> SegmentPageIndex:
        """Rebuild a segment's page index with one structural scan — the
        fallback for unsealed tails and pre-sidecar directories.  A
        verified seal lets the walk skip per-frame CRCs."""
        with self._lock:
            handle = self._handle_for(base_lsn)
        buf, close = self._map_segment(base_lsn)
        try:
            decode_file_header(buf)
            sealed = verify_seal(buf, read_seal(handle.path))
            self.page_index_rebuilds += 1
            if sealed is not None:
                return index_buffer(buf, base_lsn, end=sealed[0], verify_crc=False)
            return index_buffer(buf, base_lsn)
        finally:
            close()

    def read_records_at(self, base_lsn: int, entries) -> list[LazyRecord]:
        """Fetch records at known frame offsets of one segment — the
        per-page chain read.  ``entries`` is an offset-ascending list of
        ``(offset, lsn)`` pairs from the page index; the segment is
        mapped once and only the requested frames are touched.  An entry
        whose frame does not carry the expected LSN raises
        :class:`CodecError` (a stale index is a structural bug — the
        lifecycle is supposed to invalidate it)."""
        with self._lock:
            handle = self._handle_for(base_lsn)
            sealed = handle.sealed
        buf, close = self._map_segment(base_lsn)
        records: list[LazyRecord] = []
        new = LazyRecord.__new__
        unset = _UNSET
        try:
            for offset, want_lsn in entries:
                lsn, lo, hi = read_frame_at(buf, offset, verify_crc=not sealed)
                if lsn != want_lsn:
                    raise CodecError(
                        f"page index points at LSN {lsn} where {want_lsn} "
                        f"was expected (segment {base_lsn}, offset {offset})"
                    )
                record = new(LazyRecord)
                record.lsn = lsn
                record._body = buf[lo:hi]
                record._payload = unset
                record._labels = unset
                records.append(record)
        finally:
            self.chain_frames_read += len(records)
            self.records_decoded += len(records)
            close()
        return records

    def sync(self) -> None:
        """The durability point: ``fsync`` every file with unsynced
        bytes (and the directory when files were created), then close
        sealed files that will never be written again.

        The syscalls run with the store lock *released*: only the
        dirty-set snapshot and the watermark updates are locked, so
        appenders can keep staging (and rotating segments) while the
        disk is busy.  ``synced_size`` advances only to each file's size
        as captured *before* its fsync — bytes written mid-sync stay
        volatile until the next one, which is exactly the crash rule.
        """
        with self._lock:
            dirty = [
                (handle, handle.size)
                for handle in self._handles
                if handle.size > handle.synced_size
            ]
            dir_dirty = self._dir_dirty
            self._dir_dirty = False
        for handle, size_at_sync in dirty:
            if self.fsync_enabled and handle.fh is not None:
                os.fsync(handle.fh.fileno())
                self.fsyncs += 1
            with self._lock:
                if size_at_sync > handle.synced_size:
                    handle.synced_size = size_at_sync
        if dir_dirty:
            if self.fsync_enabled:
                dir_fd = os.open(self.directory, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
                self.fsyncs += 1
        with self._lock:
            # A sealed segment may still be the target of staged frames:
            # an append can stage into segment A and rotate to B before
            # any flush covers A's tail, so "fully synced" alone is not
            # "done being written".  Closing such a handle would break
            # the next write_up_to (the window's target LSN can trail
            # the staging front by a whole rotation).
            staged_bases = {base for _, base, _, _ in self._staged}
            for handle in self._handles[:-1]:
                if (
                    handle.fh is not None
                    and handle.size == handle.synced_size
                    and handle.base_lsn not in staged_bases
                ):
                    handle.fh.close()
                    handle.fh = None
            self.syncs += 1

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose everything volatile: staged frames and written-but-
        unsynced file tails (files with nothing synced disappear).
        Callers quiesce the write path first (the manager's crash takes
        the force lock), so no fsync is in flight here."""
        with self._lock:
            self._crash_locked()

    def _crash_locked(self) -> None:
        self._staged.clear()
        self.staged_bytes = 0
        survivors: list[_SegmentHandle] = []
        for handle in self._handles:
            # A file whose synced bytes don't reach past the header holds
            # no records — drop it so a post-crash rotation can recreate
            # the segment cleanly instead of appending a second header.
            if handle.synced_size <= FILE_HEADER_SIZE:
                if handle.fh is not None:
                    handle.fh.close()
                handle.path.unlink(missing_ok=True)
                _drop_sidecars(handle.path)
                continue
            if handle.size > handle.synced_size:
                if handle.fh is not None:
                    handle.fh.close()
                with handle.path.open("rb+") as fh:
                    fh.truncate(handle.synced_size)
                handle.size = handle.synced_size
                handle.fh = None
                # The truncation cut a frame tail, so the running seal
                # state no longer describes the file; sidecars written
                # for the longer file are stale and must go too.
                _drop_sidecars(handle.path)
                handle.sealed = False
                handle.region_crc = None
                handle.record_count = None
            survivors.append(handle)
        self._handles = survivors
        # Reopen the newest survivor for the recovered incarnation.
        self._reopen_active()

    def truncate_segment_tail(self, base_lsn: int, byte_offset: int) -> None:
        """Cut a torn tail off a segment file (cold-start cleanup)."""
        handle = self._handle_for(base_lsn)
        if handle.fh is not None:
            handle.fh.close()
            handle.fh = None
        with handle.path.open("rb+") as fh:
            fh.truncate(byte_offset)
        handle.size = handle.synced_size = byte_offset
        _drop_sidecars(handle.path)
        handle.sealed = False
        handle.region_crc = None
        handle.record_count = None
        self.torn_tails += 1
        self._reopen_active()

    def drop_segments_after(self, base_lsn: int) -> int:
        """Delete segment files beyond ``base_lsn`` (they follow a torn
        record, so by the torn-tail rule they are not part of the log).
        Returns the number of files removed."""
        keep, drop = [], []
        for handle in self._handles:
            (keep if handle.base_lsn <= base_lsn else drop).append(handle)
        for handle in drop:
            if handle.fh is not None:
                handle.fh.close()
            handle.path.unlink(missing_ok=True)
            _drop_sidecars(handle.path)
        self._handles = keep
        self._reopen_active()
        return len(drop)

    def _reopen_active(self) -> None:
        """Make sure the newest segment file is open for appending."""
        if self._handles and self._handles[-1].fh is None:
            self._handles[-1].fh = self._handles[-1].path.open("ab", buffering=0)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def _handle_for(self, base_lsn: int) -> _SegmentHandle:
        for handle in self._handles:
            if handle.base_lsn == base_lsn:
                return handle
        raise KeyError(f"no segment file with base LSN {base_lsn}")

    def read_segment_bytes(self, base_lsn: int) -> bytes:
        """The segment file's current on-disk bytes (header included)."""
        return self._handle_for(base_lsn).path.read_bytes()

    def _map_segment(self, base_lsn: int):
        """Open one segment for scanning.  Only non-active files are
        mmapped: the active file's tail can still be truncated (crash),
        and reading a shrunk mapping faults, while a sealed file is
        immutable (rename and unlink both leave a live mapping valid).
        """
        with self._lock:
            handle = self._handle_for(base_lsn)
            active = self._handles and handle is self._handles[-1]
        return _map_buffer(handle.path, allow_mmap=not active)

    def scan_segment(self, base_lsn: int, start_lsn: int = 0):
        """Stream one segment's records as lazily-decoded
        :class:`~repro.logmgr.codec.LazyRecord`, skipping records below
        ``start_lsn``.  A sealed segment is verified with one
        seal CRC pass and walked trusting lengths; otherwise every
        frame pays its own CRC check.  Stops cleanly at a torn tail
        (the manager only scans fully synced segments, so a tear here
        would mean the file was corrupted after the fact)."""
        with self._lock:
            handle = self._handle_for(base_lsn)
        if start_lsn <= base_lsn:
            start_lsn = 0  # the whole segment qualifies — skip the filter
        buf, close = self._map_segment(base_lsn)
        count = 0
        # Hot loop: records are built by direct slot assignment (no
        # __init__ frame) and slicing ``buf`` already copies the body out
        # of the mmap, so nothing here pins the unmapped buffer.
        new = LazyRecord.__new__
        unset = _UNSET
        try:
            sealed = verify_seal(buf, read_seal(handle.path))
            if sealed is not None:
                for lsn, lo, hi in iter_record_views(
                    buf, end=sealed[0], verify_crc=False, start_lsn=start_lsn
                ):
                    record = new(LazyRecord)
                    record.lsn = lsn
                    record._body = buf[lo:hi]
                    record._payload = unset
                    record._labels = unset
                    count += 1
                    yield record
                return
            try:
                for lsn, lo, hi in iter_record_views(buf, start_lsn=start_lsn):
                    record = new(LazyRecord)
                    record.lsn = lsn
                    record._body = buf[lo:hi]
                    record._payload = unset
                    record._labels = unset
                    count += 1
                    yield record
            except TornTail:
                return
        finally:
            self.records_decoded += count
            close()

    def load_segment(
        self, base_lsn: int
    ) -> tuple[list[LazyRecord], int | None, str | None]:
        """Read one whole segment file into memory (the cold-start path
        for the tail segment).  Returns ``(records, tear_offset,
        tear_reason)`` where a ``None`` tear offset means the file
        decoded cleanly to its end.  Records come back lazy — frames are
        CRC-checked (or seal-covered) here, but payload bytes decode
        only when a consumer touches them.
        """
        with self._lock:
            handle = self._handle_for(base_lsn)
        buf, close = self._map_segment(base_lsn)
        records: list[LazyRecord] = []
        append = records.append
        new = LazyRecord.__new__
        unset = _UNSET
        try:
            sealed = verify_seal(buf, read_seal(handle.path))
            views = (
                iter_record_views(buf, end=sealed[0], verify_crc=False)
                if sealed is not None
                else iter_record_views(buf)
            )
            try:
                for lsn, lo, hi in views:
                    record = new(LazyRecord)
                    record.lsn = lsn
                    record._body = buf[lo:hi]
                    record._payload = unset
                    record._labels = unset
                    append(record)
            except TornTail as tear:
                return records, tear.offset, tear.reason
            return records, None, None
        finally:
            self.records_decoded += len(records)
            close()

    def segment_stats(self, base_lsn: int) -> SegmentStats:
        """Summarize one segment without materializing records — the
        cold-start fast path for sealed segments (they are rebuilt as
        evicted in-memory segments straight from these numbers)."""
        with self._lock:
            handle = self._handle_for(base_lsn)
        buf, close = self._map_segment(base_lsn)
        try:
            return _stats_walk(buf, expected_base=base_lsn, seal=read_seal(handle.path))
        finally:
            close()

    # ------------------------------------------------------------------
    # Archive
    # ------------------------------------------------------------------

    def archive_segment(self, base_lsn: int) -> Path:
        """Retire a segment file by renaming it ``.arch`` — the archive
        sink and the log share one binary format, so media recovery can
        scan archived segments with the same decoder.  Only legal for a
        fully-synced segment (the manager checks), so this never races
        an in-flight fsync of the same file."""
        with self._lock:
            handle = self._handle_for(base_lsn)
            if handle.fh is not None:
                handle.fh.close()
                handle.fh = None
            target = handle.path.with_suffix(ARCHIVE_SUFFIX)
            handle.path.rename(target)
            # The sidecars follow their segment into the archive.
            old_seal = seal_path(handle.path)
            if old_seal.exists():
                old_seal.rename(seal_path(target))
            old_pages = pages_path(handle.path)
            if old_pages.exists():
                old_pages.rename(pages_path(target))
            self._handles.remove(handle)
            self.segments_archived += 1
            return target

    def archived_paths(self) -> list[Path]:
        """Archived segment files, oldest first."""
        return sorted(self.directory.glob(f"segment-*{ARCHIVE_SUFFIX}"))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def as_dict(self) -> dict[str, int]:
        """The store's counters (for the engine metrics registry)."""
        return {
            "appends": self.appends,
            "frames_written": self.frames_written,
            "records_written": self.records_written,
            "bytes_written": self.bytes_written,
            "fsyncs": self.fsyncs,
            "syncs": self.syncs,
            "records_decoded": self.records_decoded,
            "torn_tails": self.torn_tails,
            "segments_created": self.segments_created,
            "segments_archived": self.segments_archived,
            "seals_written": self.seals_written,
            "page_indexes_written": self.page_indexes_written,
            "page_index_rebuilds": self.page_index_rebuilds,
            "chain_frames_read": self.chain_frames_read,
        }

    def close(self) -> None:
        """Close every open file handle (idempotent)."""
        with self._lock:
            for handle in self._handles:
                if handle.fh is not None:
                    handle.fh.close()
                    handle.fh = None

    def __repr__(self) -> str:
        return (
            f"FileLogStore({str(self.directory)!r}, segments={len(self._handles)}, "
            f"fsyncs={self.fsyncs})"
        )
