"""File-backed log segments: real bytes, real ``fsync``, real survival.

One :class:`FileLogStore` owns a directory of segment files, each named
``segment-<base_lsn>.wal`` and laid out as a
:data:`~repro.logmgr.codec.FILE_MAGIC` header followed by consecutive
record frames (see :mod:`repro.logmgr.codec`).  The store is the
durability half of the :class:`~repro.logmgr.manager.LogManager`: the
manager stays the LSN authority and the in-memory read path, while the
store turns ``flush()`` into ``write``/``fsync`` against these files.

The write path is staged:

- :meth:`stage` buffers an encoded frame in memory (an append is cheap
  and *volatile*);
- :meth:`write_up_to` hands staged frames to the OS in one ``write``
  per segment file (written but unsynced bytes live in the page cache —
  still volatile under the failure model);
- :meth:`sync` is the only durability point: one ``fsync`` per dirty
  file, after which everything written survives a crash.

Group commit lives one level up: the manager counts pending force
requests and calls :meth:`sync` once per batch, so N commits share one
``fsync`` — the classic group-commit trade measured by benchmark E18.

:meth:`crash` simulates the kernel's view of a power cut: staged frames
vanish, and every file is truncated back to its last synced length.
The cross-process kill test does the same thing for real — ``kill -9``
discards the staging buffer with the process, and the torn-tail rule
cleans up whatever partial frame the page cache happened to flush.

Sealed segment files double as the **archive**: :meth:`archive_segment`
renames a truncated segment to ``.arch`` instead of deleting it, so log
truncation and media-recovery archiving are the same binary format.

**Concurrency contract.**  The store is safe under the manager's
locking discipline: any number of threads may :meth:`stage` (they hold
the manager mutex), while the flush path (:meth:`write_up_to` +
:meth:`sync`) is serialized by the manager's force lock.  The store's
own lock guards the staged-frame buffer and the handle list, so a
segment rotation (``begin_segment``, called by an appender) never races
the flusher's iteration — and the ``fsync`` syscall itself runs with no
lock held, so staging continues while the disk works.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

from repro.logmgr.codec import (
    FILE_HEADER_SIZE,
    CodecError,
    TornTail,
    decode_file_header,
    decode_frame,
    encode_file_header,
    iter_frames,
)
from repro.logmgr.records import LogRecord

SEGMENT_SUFFIX = ".wal"
ARCHIVE_SUFFIX = ".arch"


def segment_filename(base_lsn: int) -> str:
    """The canonical file name for the segment starting at ``base_lsn``."""
    return f"segment-{base_lsn:016d}{SEGMENT_SUFFIX}"


def iter_file_records(path):
    """Decode every record of one segment or archive file, in order.

    Stands alone from any store — ``logdump`` and the cold-start path
    use it on bare paths.  A torn tail simply ends the stream (use
    :func:`~repro.logmgr.codec.decode_frame` directly to see the tear).
    """
    buf = Path(path).read_bytes()
    decode_file_header(buf)
    yield from iter_frames(buf, FILE_HEADER_SIZE)


class _SegmentHandle:
    """Bookkeeping for one segment file (internal to the store)."""

    __slots__ = ("path", "base_lsn", "fh", "size", "synced_size")

    def __init__(self, path: Path, base_lsn: int, fh, size: int, synced_size: int):
        self.path = path
        self.base_lsn = base_lsn
        self.fh = fh  # raw (unbuffered) append handle, or None once closed
        self.size = size
        self.synced_size = synced_size


class FileLogStore:
    """A directory of binary segment files with staged, batched writes."""

    def __init__(self, directory: str | os.PathLike, fsync: bool = True):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # ``fsync=False`` keeps the file layout but skips the syscall —
        # for tests and benches that want the format without the wait.
        self.fsync_enabled = fsync
        self._lock = threading.RLock()
        self._handles: list[_SegmentHandle] = []
        self._staged: list[tuple[int, int, bytes]] = []  # (lsn, base, frame)
        self._dir_dirty = False  # a file was created since the last sync
        # Counters surfaced through the engine metrics registry.
        self.appends = 0
        self.staged_bytes = 0
        self.frames_written = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.syncs = 0
        self.records_decoded = 0
        self.torn_tails = 0
        self.segments_created = 0
        self.segments_archived = 0

    # ------------------------------------------------------------------
    # Attach (cold start)
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, directory: str | os.PathLike, fsync: bool = True) -> "FileLogStore":
        """Open an existing segment directory without creating anything.

        Every ``.wal`` file becomes a handle; the newest one is reopened
        for appending.  Bytes on disk at attach time are, by definition,
        the crash survivors, so ``synced_size`` starts at the file size.
        """
        store = cls(directory, fsync=fsync)
        paths = sorted(store.directory.glob(f"segment-*{SEGMENT_SUFFIX}"))
        for index, path in enumerate(paths):
            size = path.stat().st_size
            with path.open("rb") as fh:
                header = fh.read(FILE_HEADER_SIZE)
            base_lsn = decode_file_header(header)
            fh = path.open("ab", buffering=0) if index == len(paths) - 1 else None
            store._handles.append(_SegmentHandle(path, base_lsn, fh, size, size))
        return store

    def segment_base_lsns(self) -> list[int]:
        """Base LSNs of the (non-archived) segment files, oldest first."""
        with self._lock:
            return [handle.base_lsn for handle in self._handles]

    def is_empty(self) -> bool:
        """True when the store has no segment files yet."""
        return not self._handles

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def begin_segment(self, base_lsn: int) -> None:
        """Start a new segment file; subsequent frames route to it."""
        path = self.directory / segment_filename(base_lsn)
        fh = path.open("ab", buffering=0)
        header = encode_file_header(base_lsn)
        fh.write(header)
        with self._lock:
            self._handles.append(
                _SegmentHandle(path, base_lsn, fh, len(header), 0)
            )
            self.segments_created += 1
            self._dir_dirty = True

    def stage(self, lsn: int, frame: bytes) -> None:
        """Buffer one encoded frame for the current (newest) segment."""
        with self._lock:
            if not self._handles:
                raise CodecError("stage() before begin_segment()")
            self._staged.append((lsn, self._handles[-1].base_lsn, frame))
            self.appends += 1
            self.staged_bytes += len(frame)

    def write_up_to(self, lsn: int) -> None:
        """Hand staged frames with LSN <= ``lsn`` to the OS, in order,
        one ``write`` per touched segment file.  Written bytes are still
        volatile until :meth:`sync`.  Callers serialize on the manager's
        force lock; the store lock covers the staged-buffer cut so
        concurrent :meth:`stage` calls never lose frames."""
        with self._lock:
            if not self._staged or self._staged[0][0] > lsn:
                return
            cut = 0
            while cut < len(self._staged) and self._staged[cut][0] <= lsn:
                cut += 1
            batch, self._staged = self._staged[:cut], self._staged[cut:]
            by_base = {handle.base_lsn: handle for handle in self._handles}
            index = 0
            while index < cut:
                base = batch[index][1]
                chunk = []
                while index < cut and batch[index][1] == base:
                    chunk.append(batch[index][2])
                    index += 1
                handle = by_base[base]
                if handle.fh is None:
                    # Belt and braces for the stage-then-rotate race: if
                    # a sealed handle was closed with frames still bound
                    # for it, reopen rather than lose the write.
                    handle.fh = handle.path.open("ab", buffering=0)
                blob = b"".join(chunk)
                handle.fh.write(blob)
                handle.size += len(blob)
                self.frames_written += len(chunk)
                self.bytes_written += len(blob)
                self.staged_bytes -= len(blob)

    def sync(self) -> None:
        """The durability point: ``fsync`` every file with unsynced
        bytes (and the directory when files were created), then close
        sealed files that will never be written again.

        The syscalls run with the store lock *released*: only the
        dirty-set snapshot and the watermark updates are locked, so
        appenders can keep staging (and rotating segments) while the
        disk is busy.  ``synced_size`` advances only to each file's size
        as captured *before* its fsync — bytes written mid-sync stay
        volatile until the next one, which is exactly the crash rule.
        """
        with self._lock:
            dirty = [
                (handle, handle.size)
                for handle in self._handles
                if handle.size > handle.synced_size
            ]
            dir_dirty = self._dir_dirty
            self._dir_dirty = False
        for handle, size_at_sync in dirty:
            if self.fsync_enabled and handle.fh is not None:
                os.fsync(handle.fh.fileno())
                self.fsyncs += 1
            with self._lock:
                if size_at_sync > handle.synced_size:
                    handle.synced_size = size_at_sync
        if dir_dirty:
            if self.fsync_enabled:
                dir_fd = os.open(self.directory, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
                self.fsyncs += 1
        with self._lock:
            # A sealed segment may still be the target of staged frames:
            # an append can stage into segment A and rotate to B before
            # any flush covers A's tail, so "fully synced" alone is not
            # "done being written".  Closing such a handle would break
            # the next write_up_to (the window's target LSN can trail
            # the staging front by a whole rotation).
            staged_bases = {base for _, base, _ in self._staged}
            for handle in self._handles[:-1]:
                if (
                    handle.fh is not None
                    and handle.size == handle.synced_size
                    and handle.base_lsn not in staged_bases
                ):
                    handle.fh.close()
                    handle.fh = None
            self.syncs += 1

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose everything volatile: staged frames and written-but-
        unsynced file tails (files with nothing synced disappear).
        Callers quiesce the write path first (the manager's crash takes
        the force lock), so no fsync is in flight here."""
        with self._lock:
            self._crash_locked()

    def _crash_locked(self) -> None:
        self._staged.clear()
        self.staged_bytes = 0
        survivors: list[_SegmentHandle] = []
        for handle in self._handles:
            # A file whose synced bytes don't reach past the header holds
            # no records — drop it so a post-crash rotation can recreate
            # the segment cleanly instead of appending a second header.
            if handle.synced_size <= FILE_HEADER_SIZE:
                if handle.fh is not None:
                    handle.fh.close()
                handle.path.unlink(missing_ok=True)
                continue
            if handle.size > handle.synced_size:
                if handle.fh is not None:
                    handle.fh.close()
                with handle.path.open("rb+") as fh:
                    fh.truncate(handle.synced_size)
                handle.size = handle.synced_size
                handle.fh = None
            survivors.append(handle)
        self._handles = survivors
        # Reopen the newest survivor for the recovered incarnation.
        self._reopen_active()

    def truncate_segment_tail(self, base_lsn: int, byte_offset: int) -> None:
        """Cut a torn tail off a segment file (cold-start cleanup)."""
        handle = self._handle_for(base_lsn)
        if handle.fh is not None:
            handle.fh.close()
            handle.fh = None
        with handle.path.open("rb+") as fh:
            fh.truncate(byte_offset)
        handle.size = handle.synced_size = byte_offset
        self.torn_tails += 1
        self._reopen_active()

    def drop_segments_after(self, base_lsn: int) -> int:
        """Delete segment files beyond ``base_lsn`` (they follow a torn
        record, so by the torn-tail rule they are not part of the log).
        Returns the number of files removed."""
        keep, drop = [], []
        for handle in self._handles:
            (keep if handle.base_lsn <= base_lsn else drop).append(handle)
        for handle in drop:
            if handle.fh is not None:
                handle.fh.close()
            handle.path.unlink(missing_ok=True)
        self._handles = keep
        self._reopen_active()
        return len(drop)

    def _reopen_active(self) -> None:
        """Make sure the newest segment file is open for appending."""
        if self._handles and self._handles[-1].fh is None:
            self._handles[-1].fh = self._handles[-1].path.open("ab", buffering=0)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def _handle_for(self, base_lsn: int) -> _SegmentHandle:
        for handle in self._handles:
            if handle.base_lsn == base_lsn:
                return handle
        raise KeyError(f"no segment file with base LSN {base_lsn}")

    def read_segment_bytes(self, base_lsn: int) -> bytes:
        """The segment file's current on-disk bytes (header included)."""
        return self._handle_for(base_lsn).path.read_bytes()

    def scan_segment(self, base_lsn: int, start_lsn: int = 0):
        """Stream decoded records of one segment file, skipping records
        below ``start_lsn``.  Stops cleanly at a torn tail (the manager
        only scans fully synced segments, so a tear here would mean the
        file was corrupted after the fact)."""
        buf = self.read_segment_bytes(base_lsn)
        decode_file_header(buf)
        offset = FILE_HEADER_SIZE
        while True:
            try:
                record, offset = decode_frame(buf, offset)
            except TornTail:
                return
            self.records_decoded += 1
            if record.lsn >= start_lsn:
                yield record

    def load_segment(
        self, base_lsn: int
    ) -> tuple[list[LogRecord], int | None, str | None]:
        """Decode one whole segment file into memory (the cold-start
        path).  Returns ``(records, tear_offset, tear_reason)`` where a
        ``None`` tear offset means the file decoded cleanly to its end."""
        buf = self.read_segment_bytes(base_lsn)
        decode_file_header(buf)
        offset = FILE_HEADER_SIZE
        records: list[LogRecord] = []
        while offset < len(buf):
            try:
                record, offset = decode_frame(buf, offset)
            except TornTail as tear:
                return records, tear.offset, tear.reason
            records.append(record)
            self.records_decoded += 1
        return records, None, None

    # ------------------------------------------------------------------
    # Archive
    # ------------------------------------------------------------------

    def archive_segment(self, base_lsn: int) -> Path:
        """Retire a segment file by renaming it ``.arch`` — the archive
        sink and the log share one binary format, so media recovery can
        scan archived segments with the same decoder.  Only legal for a
        fully-synced segment (the manager checks), so this never races
        an in-flight fsync of the same file."""
        with self._lock:
            handle = self._handle_for(base_lsn)
            if handle.fh is not None:
                handle.fh.close()
                handle.fh = None
            target = handle.path.with_suffix(ARCHIVE_SUFFIX)
            handle.path.rename(target)
            self._handles.remove(handle)
            self.segments_archived += 1
            return target

    def archived_paths(self) -> list[Path]:
        """Archived segment files, oldest first."""
        return sorted(self.directory.glob(f"segment-*{ARCHIVE_SUFFIX}"))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def as_dict(self) -> dict[str, int]:
        """The store's counters (for the engine metrics registry)."""
        return {
            "appends": self.appends,
            "frames_written": self.frames_written,
            "bytes_written": self.bytes_written,
            "fsyncs": self.fsyncs,
            "syncs": self.syncs,
            "records_decoded": self.records_decoded,
            "torn_tails": self.torn_tails,
            "segments_created": self.segments_created,
            "segments_archived": self.segments_archived,
        }

    def close(self) -> None:
        """Close every open file handle (idempotent)."""
        with self._lock:
            for handle in self._handles:
                if handle.fh is not None:
                    handle.fh.close()
                    handle.fh = None

    def __repr__(self) -> str:
        return (
            f"FileLogStore({str(self.directory)!r}, segments={len(self._handles)}, "
            f"fsyncs={self.fsyncs})"
        )
