"""The log manager: LSNs, typed redo records, volatile tail vs stable prefix.

Records (:mod:`repro.logmgr.records`) come in the four §6 flavors —
physical, logical, physiological, and generalized multi-page — plus
checkpoint records.  The manager (:mod:`repro.logmgr.manager`) assigns
monotonically increasing LSNs, tracks which prefix of the log has been
forced to stable storage, enforces the write-ahead rule on request, and
drops the volatile tail at a crash.
"""

from repro.logmgr.records import (
    CheckpointRecord,
    LogEntry,
    LogicalRedo,
    MultiPageRedo,
    PageAction,
    PhysicalRedo,
    PhysiologicalRedo,
)
from repro.logmgr.manager import LogManager, WalViolation

__all__ = [
    "CheckpointRecord",
    "LogEntry",
    "LogManager",
    "LogicalRedo",
    "MultiPageRedo",
    "PageAction",
    "PhysicalRedo",
    "PhysiologicalRedo",
    "WalViolation",
]
