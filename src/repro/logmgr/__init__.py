"""The log manager: LSNs, one record protocol, segments, stable prefix.

Records (:mod:`repro.logmgr.records`) come in the four §6 flavors —
physical, logical, physiological, and generalized multi-page — plus
checkpoint records, all carried by the single :class:`LogRecord` type
that the theory core shares.  The manager (:mod:`repro.logmgr.manager`)
is the system's only LSN authority: it assigns monotonically increasing
LSNs, stores records in fixed-size segments with per-segment stable
boundaries, retires sealed segments behind checkpoints, enforces the
write-ahead rule on request, and drops the volatile tail at a crash.
"""

from repro.logmgr.records import (
    CheckpointRecord,
    LogEntry,
    LogRecord,
    LogicalRedo,
    MultiPageRedo,
    PageAction,
    PhysicalRedo,
    PhysiologicalRedo,
)
from repro.logmgr.codec import (
    CodecError,
    LazyRecord,
    TornTail,
    decode_frame,
    encode_record,
    encode_window,
    iter_frames,
    iter_record_views,
)
from repro.logmgr.filelog import FileLogStore
from repro.logmgr.manager import (
    DEFAULT_SEGMENT_SIZE,
    LogManager,
    LogSegment,
    WalViolation,
)
from repro.logmgr.pageindex import (
    CHECKPOINT_PAGE,
    LOGICAL_PAGE,
    PageRedoIndex,
    SegmentPageIndex,
)
from repro.logmgr.pipeline import GroupCommitPipeline, PipelineClosed

__all__ = [
    "CHECKPOINT_PAGE",
    "CheckpointRecord",
    "CodecError",
    "DEFAULT_SEGMENT_SIZE",
    "FileLogStore",
    "GroupCommitPipeline",
    "LOGICAL_PAGE",
    "LazyRecord",
    "LogEntry",
    "LogManager",
    "LogRecord",
    "LogSegment",
    "PageRedoIndex",
    "PipelineClosed",
    "SegmentPageIndex",
    "LogicalRedo",
    "MultiPageRedo",
    "PageAction",
    "PhysicalRedo",
    "PhysiologicalRedo",
    "TornTail",
    "WalViolation",
    "decode_frame",
    "encode_record",
    "encode_window",
    "iter_frames",
    "iter_record_views",
]
