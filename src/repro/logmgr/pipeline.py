"""Cross-session pipelined group commit: many sessions, one fsync.

``group_commit=N`` on the manager batches one *caller's* forces — it
counts force requests and pays every N-th fsync, which only helps a
single session issuing commits back to back.  A server multiplexing
thousands of sessions needs the dual: forces arriving from *different*
threads within one disk rotation should share one staged write and one
``fsync``.  That is what :class:`GroupCommitPipeline` does.

The shape is the classic pipelined group commit:

- a session calls :meth:`commit` with the LSN of its last record; the
  request is folded into the *window* (just a max over requested LSNs),
  the committer is nudged, and the session parks on the log manager's
  :meth:`~repro.logmgr.manager.LogManager.wait_stable`;
- one **committer thread** drains the window: it takes the highest
  requested LSN and issues a single barrier force —
  ``log.flush(up_to, barrier=True)`` window-encodes the whole batch
  into one packed blob of per-record frames per segment run (one
  staged blob, one ``write``) plus one ``fsync`` covering every
  session's records — then loops;
- while that fsync is in flight, new commit requests accumulate into
  the *next* window; the batch size **emerges** from the disk's own
  latency (the slower the fsync, the wider the window), which is why
  throughput scales with fan-in.  On a fast disk the fsync alone is too
  short a gathering interval, so the committer also waits
  ``window_delay`` after a window opens before forcing — the classic
  group-commit timer: a bounded, configurable latency add (default
  1 ms) bought back many times over in fsyncs saved;
- waking is by stable LSN: the force advances the manager's watermark
  and notifies its condition variable, releasing exactly the waiters
  whose records are covered — never early, because the predicate is
  re-checked under the manager mutex.

Two ordering guarantees the tests pin down: ``stable_lsn`` never
regresses (the manager's force path takes a max), and a
:meth:`commit` return implies durability of that session's records
(``wait_stable`` is predicate-checked, not notification-counted).
Barrier forces issued *around* the pipeline — a ``sync()`` barrier, the
WAL gate's ``ensure_stable`` — interleave safely: they serialize on the
manager's force lock and can only advance the same watermark.
"""

from __future__ import annotations

import threading
import time
from typing import Any

DEFAULT_COMMIT_TIMEOUT = 60.0
DEFAULT_WINDOW_DELAY = 0.001


class PipelineClosed(RuntimeError):
    """A commit was requested after the pipeline shut down."""


class GroupCommitPipeline:
    """One committer thread coalescing every session's pending forces."""

    def __init__(
        self,
        log,
        name: str = "group-commit",
        commit_timeout: float = DEFAULT_COMMIT_TIMEOUT,
        window_delay: float = DEFAULT_WINDOW_DELAY,
    ):
        self.log = log
        self.commit_timeout = commit_timeout
        self.window_delay = window_delay
        self._mutex = threading.Lock()
        self._work = threading.Condition(self._mutex)
        self._requested_lsn = -1  # high-water mark of the open window
        self._window_requests = 0  # commits folded into the open window
        self._closed = False
        self._abort = False
        # Counters (read via stats(); mutated under the mutex).
        self.commits = 0
        self.fast_path = 0
        self.windows = 0
        self.coalesced_total = 0
        self.max_coalesced = 0
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # The session-facing half
    # ------------------------------------------------------------------

    def commit(self, lsn: int | None = None, timeout: float | None = None) -> int:
        """Make the log stable through ``lsn`` (default: everything
        appended so far); blocks until it is.  Returns the stable LSN
        observed on wake, which is >= ``lsn`` by construction.
        """
        if lsn is None:
            lsn = self.log.next_lsn - 1
        if self.log.stable_lsn >= lsn:
            # Someone else's window already covered these records.
            with self._mutex:
                self.commits += 1
                self.fast_path += 1
            return self.log.stable_lsn
        with self._work:
            if self._closed:
                raise PipelineClosed("commit after pipeline close")
            self.commits += 1
            self._window_requests += 1
            if lsn > self._requested_lsn:
                self._requested_lsn = lsn
            self._work.notify_all()
        if not self.log.wait_stable(
            lsn, timeout=self.commit_timeout if timeout is None else timeout
        ):
            raise TimeoutError(
                f"group commit of LSN {lsn} still not stable after "
                f"{self.commit_timeout if timeout is None else timeout}s "
                f"(stable_lsn={self.log.stable_lsn})"
            )
        return self.log.stable_lsn

    # ------------------------------------------------------------------
    # The committer half
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._work:
                while not self._closed and (
                    self._requested_lsn <= self.log.stable_lsn
                ):
                    self._work.wait()
                if self._closed and (
                    self._abort or self._requested_lsn <= self.log.stable_lsn
                ):
                    return
            # Let the window gather: requests arriving during this delay
            # (and during the fsync below) share the force.  Skipped when
            # closing — the drain should not dawdle.
            if self.window_delay > 0 and not self._closed:
                time.sleep(self.window_delay)
            with self._work:
                target = self._requested_lsn
                coalesced = self._window_requests
                self._window_requests = 0
            # One write + one fsync for the whole window.  Requests that
            # arrive while this force is on the disk fold into the next
            # window — that is the pipelining.
            self.log.flush(up_to_lsn=target, barrier=True)
            with self._mutex:
                self.windows += 1
                self.coalesced_total += coalesced
                if coalesced > self.max_coalesced:
                    self.max_coalesced = coalesced

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    def close(self, timeout: float = 10.0, abort: bool = False) -> None:
        """Drain the open window, then stop the committer (idempotent).
        Commits requested after close raise :class:`PipelineClosed`.

        ``abort=True`` skips the drain — the committer exits without
        forcing, which is what a simulated crash needs (the volatile
        tail must be *lost*, not flushed on the way down).  Sessions
        still parked in :meth:`commit` then time out rather than being
        woken with a durability promise nobody kept.
        """
        with self._work:
            self._closed = True
            if abort:
                self._abort = True
            self._work.notify_all()
        self._thread.join(timeout)

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict[str, Any]:
        """Pipeline counters (for the engine metrics registry)."""
        with self._mutex:
            return {
                "commits": self.commits,
                "fast_path": self.fast_path,
                "windows": self.windows,
                "coalesced_total": self.coalesced_total,
                "max_coalesced": self.max_coalesced,
            }

    def __repr__(self) -> str:
        return (
            f"GroupCommitPipeline(commits={self.commits}, "
            f"windows={self.windows}, max_coalesced={self.max_coalesced})"
        )
