"""The binary wire format: struct-packed, versioned, CRC-guarded.

A log that survives a crash can only contain *bytes*, so every payload
in :mod:`repro.logmgr.records` has an exact binary encoding here.  The
format is deliberately boring — little-endian ``struct`` packing, no
compression, no pointers — because boring formats are the ones a
recovery scan can trust after a kill -9.

Record frame (what :class:`~repro.logmgr.filelog.FileLogStore` appends
to a segment file)::

    u32 body_length | u32 crc32(body) | body

    body = u8 format_version | u64 lsn | tagged payload | tagged labels

The **torn-tail rule**: a frame whose length field runs past the end of
the file, or whose body fails the CRC check, ends the stable log — the
decoder reports the tear and refuses to look further, because bytes
after a torn record are firmware noise, not history.  This is how a
write interrupted mid-``fsync`` is detected and discarded at the next
cold start.

Values inside payloads (cell contents, action arguments, label values)
are encoded with a small tagged value codec covering ``None``, bools,
ints, floats, strings, bytes, tuples, lists, and dicts — everything the
engines, the B-tree, and the checkpoint snapshots actually log.  A
payload holding anything else (e.g. an abstract theory
:class:`~repro.core.model.Operation`) raises :class:`CodecError`; such
logs are in-memory-only by construction.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterator, NamedTuple

from repro.logmgr.records import (
    CheckpointRecord,
    LogRecord,
    LogicalRedo,
    MultiPageRedo,
    PageAction,
    PhysicalRedo,
    PhysiologicalRedo,
)

FORMAT_VERSION = 1

# Segment-file header: magic, format version, base LSN of the file.
FILE_MAGIC = b"RLOG"
_FILE_HEADER = struct.Struct("<4sBQ")
FILE_HEADER_SIZE = _FILE_HEADER.size

# Frame prefix: body length, CRC32 of the body.
_FRAME_PREFIX = struct.Struct("<II")
FRAME_PREFIX_SIZE = _FRAME_PREFIX.size

_BODY_PREFIX = struct.Struct("<BQ")

# ----------------------------------------------------------------------
# Tags
# ----------------------------------------------------------------------

# Value tags (one byte each).
_V_NONE = 0x00
_V_TRUE = 0x01
_V_FALSE = 0x02
_V_INT = 0x03       # i64
_V_BIGINT = 0x04    # u32 length + signed big-endian bytes
_V_FLOAT = 0x05     # f64
_V_STR = 0x06       # u32 length + utf-8
_V_BYTES = 0x07     # u32 length + raw
_V_TUPLE = 0x08     # u32 count + values
_V_LIST = 0x09      # u32 count + values
_V_DICT = 0x0A      # u32 count + key/value pairs

# Payload tags.
PAYLOAD_PHYSICAL = 0x11
PAYLOAD_PHYSIOLOGICAL = 0x12
PAYLOAD_LOGICAL = 0x13
PAYLOAD_MULTIPAGE = 0x14
PAYLOAD_CHECKPOINT = 0x15

PAYLOAD_NAMES = {
    PAYLOAD_PHYSICAL: "PhysicalRedo",
    PAYLOAD_PHYSIOLOGICAL: "PhysiologicalRedo",
    PAYLOAD_LOGICAL: "LogicalRedo",
    PAYLOAD_MULTIPAGE: "MultiPageRedo",
    PAYLOAD_CHECKPOINT: "CheckpointRecord",
}

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class CodecError(ValueError):
    """A payload or value the wire format cannot represent (encode side)
    or malformed bytes that are not a clean torn tail (decode side)."""


class TornTail(Exception):
    """A frame failed the length or CRC check: the stable log ends here.

    Carries the byte ``offset`` of the tear and a human ``reason`` —
    the decode loop raises it, and scanners catch it to stop cleanly.
    """

    def __init__(self, offset: int, reason: str):
        super().__init__(f"torn log tail at byte {offset}: {reason}")
        self.offset = offset
        self.reason = reason


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------

def encode_value(value: Any, out: bytearray) -> None:
    """Append the tagged encoding of ``value`` to ``out``.

    Bools are checked before ints (``bool`` is an ``int`` subclass);
    ints outside i64 take the big-int path so checkpoint counters can
    never silently wrap.
    """
    if value is None:
        out += _U8.pack(_V_NONE)
    elif value is True:
        out += _U8.pack(_V_TRUE)
    elif value is False:
        out += _U8.pack(_V_FALSE)
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out += _U8.pack(_V_INT)
            out += _I64.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            out += _U8.pack(_V_BIGINT)
            out += _U32.pack(len(raw))
            out += raw
    elif isinstance(value, float):
        out += _U8.pack(_V_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _U8.pack(_V_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, bytes):
        out += _U8.pack(_V_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif isinstance(value, tuple):
        out += _U8.pack(_V_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, list):
        out += _U8.pack(_V_LIST)
        out += _U32.pack(len(value))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, dict):
        out += _U8.pack(_V_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            encode_value(key, out)
            encode_value(item, out)
    else:
        raise CodecError(
            f"value of type {type(value).__name__!r} has no wire encoding"
        )


def decode_value(buf: bytes, offset: int) -> tuple[Any, int]:
    """Decode one tagged value at ``offset``; returns (value, next offset)."""
    try:
        tag = buf[offset]
    except IndexError:
        raise CodecError(f"value truncated at byte {offset}") from None
    offset += 1
    if tag == _V_NONE:
        return None, offset
    if tag == _V_TRUE:
        return True, offset
    if tag == _V_FALSE:
        return False, offset
    try:
        if tag == _V_INT:
            return _I64.unpack_from(buf, offset)[0], offset + 8
        if tag == _V_FLOAT:
            return _F64.unpack_from(buf, offset)[0], offset + 8
        if tag in (_V_BIGINT, _V_STR, _V_BYTES):
            (length,) = _U32.unpack_from(buf, offset)
            offset += 4
            raw = bytes(buf[offset : offset + length])
            if len(raw) != length:
                raise CodecError(f"value truncated at byte {offset}")
            offset += length
            if tag == _V_BIGINT:
                return int.from_bytes(raw, "big", signed=True), offset
            if tag == _V_STR:
                return raw.decode("utf-8"), offset
            return raw, offset
        if tag in (_V_TUPLE, _V_LIST):
            (count,) = _U32.unpack_from(buf, offset)
            offset += 4
            items = []
            for _ in range(count):
                item, offset = decode_value(buf, offset)
                items.append(item)
            return (tuple(items) if tag == _V_TUPLE else items), offset
        if tag == _V_DICT:
            (count,) = _U32.unpack_from(buf, offset)
            offset += 4
            result: dict = {}
            for _ in range(count):
                key, offset = decode_value(buf, offset)
                item, offset = decode_value(buf, offset)
                result[key] = item
            return result, offset
    except struct.error:
        raise CodecError(f"value truncated at byte {offset}") from None
    raise CodecError(f"unknown value tag 0x{tag:02x} at byte {offset - 1}")


# ----------------------------------------------------------------------
# Payload codec
# ----------------------------------------------------------------------

def _encode_action(action: PageAction, out: bytearray) -> None:
    encode_value(action.kind, out)
    encode_value(action.args, out)


def _decode_action(buf: bytes, offset: int) -> tuple[PageAction, int]:
    kind, offset = decode_value(buf, offset)
    args, offset = decode_value(buf, offset)
    return PageAction(kind, args), offset


def payload_tag(payload: Any) -> int:
    """The wire tag for ``payload`` (CodecError for unencodable types)."""
    if isinstance(payload, PhysicalRedo):
        return PAYLOAD_PHYSICAL
    if isinstance(payload, PhysiologicalRedo):
        return PAYLOAD_PHYSIOLOGICAL
    if isinstance(payload, LogicalRedo):
        return PAYLOAD_LOGICAL
    if isinstance(payload, MultiPageRedo):
        return PAYLOAD_MULTIPAGE
    if isinstance(payload, CheckpointRecord):
        return PAYLOAD_CHECKPOINT
    raise CodecError(
        f"payload of type {type(payload).__name__!r} has no wire encoding "
        f"(only the §6 record types are durable)"
    )


def encode_payload(payload: Any, out: bytearray) -> None:
    """Append ``u8 tag`` plus the payload body to ``out``."""
    tag = payload_tag(payload)
    out += _U8.pack(tag)
    if tag == PAYLOAD_PHYSICAL:
        encode_value(payload.page_id, out)
        encode_value(payload.cells, out)
        encode_value(payload.whole_page, out)
    elif tag == PAYLOAD_PHYSIOLOGICAL:
        encode_value(payload.page_id, out)
        _encode_action(payload.action, out)
    elif tag == PAYLOAD_LOGICAL:
        encode_value(payload.description, out)
    elif tag == PAYLOAD_MULTIPAGE:
        encode_value(payload.read_page_ids, out)
        out += _U32.pack(len(payload.writes))
        for page_id, actions in payload.writes.items():
            encode_value(page_id, out)
            out += _U32.pack(len(actions))
            for action in actions:
                _encode_action(action, out)
    else:  # PAYLOAD_CHECKPOINT
        encode_value(payload.data, out)


def decode_payload(buf: bytes, offset: int) -> tuple[Any, int]:
    """Decode one tagged payload at ``offset``; returns (payload, next)."""
    try:
        tag = buf[offset]
    except IndexError:
        raise CodecError(f"payload truncated at byte {offset}") from None
    offset += 1
    if tag == PAYLOAD_PHYSICAL:
        page_id, offset = decode_value(buf, offset)
        cells, offset = decode_value(buf, offset)
        whole_page, offset = decode_value(buf, offset)
        return PhysicalRedo(page_id, cells, whole_page), offset
    if tag == PAYLOAD_PHYSIOLOGICAL:
        page_id, offset = decode_value(buf, offset)
        action, offset = _decode_action(buf, offset)
        return PhysiologicalRedo(page_id, action), offset
    if tag == PAYLOAD_LOGICAL:
        description, offset = decode_value(buf, offset)
        return LogicalRedo(description), offset
    if tag == PAYLOAD_MULTIPAGE:
        read_page_ids, offset = decode_value(buf, offset)
        try:
            (n_writes,) = _U32.unpack_from(buf, offset)
        except struct.error:
            raise CodecError(f"payload truncated at byte {offset}") from None
        offset += 4
        writes: dict = {}
        for _ in range(n_writes):
            page_id, offset = decode_value(buf, offset)
            try:
                (n_actions,) = _U32.unpack_from(buf, offset)
            except struct.error:
                raise CodecError(f"payload truncated at byte {offset}") from None
            offset += 4
            actions = []
            for _ in range(n_actions):
                action, offset = _decode_action(buf, offset)
                actions.append(action)
            writes[page_id] = tuple(actions)
        return MultiPageRedo(read_page_ids, writes), offset
    if tag == PAYLOAD_CHECKPOINT:
        data, offset = decode_value(buf, offset)
        return CheckpointRecord(data), offset
    raise CodecError(f"unknown payload tag 0x{tag:02x} at byte {offset - 1}")


# ----------------------------------------------------------------------
# Record frames
# ----------------------------------------------------------------------

def encode_record(record: LogRecord) -> bytes:
    """The full wire frame for ``record`` (prefix + CRC'd body)."""
    body = bytearray(_BODY_PREFIX.pack(FORMAT_VERSION, record.lsn))
    encode_payload(record.payload, body)
    encode_value(record.labels, body)
    return _FRAME_PREFIX.pack(len(body), zlib.crc32(body)) + bytes(body)


def encoded_size(record: LogRecord) -> int:
    """The exact on-wire byte count of ``record``'s frame."""
    return len(encode_record(record))


def is_encodable(payload: Any) -> bool:
    """Can this payload take the durable path?  (Type check only — a
    known payload type holding an exotic value still raises
    :class:`CodecError` at encode time.)"""
    return isinstance(
        payload,
        (
            PhysicalRedo,
            PhysiologicalRedo,
            LogicalRedo,
            MultiPageRedo,
            CheckpointRecord,
        ),
    )


def decode_frame(buf: bytes, offset: int) -> tuple[LogRecord, int]:
    """Decode one frame at ``offset``; returns (record, next offset).

    Raises :class:`TornTail` when the frame is incomplete or its CRC
    fails — by the torn-tail rule the caller must treat ``offset`` as
    the end of the stable log.  Raises :class:`CodecError` for bytes
    that pass the CRC but decode to garbage (a format bug, not a tear).
    """
    end = len(buf)
    if offset == end:
        raise TornTail(offset, "end of data")
    if end - offset < FRAME_PREFIX_SIZE:
        raise TornTail(offset, "truncated frame prefix")
    length, crc = _FRAME_PREFIX.unpack_from(buf, offset)
    body_start = offset + FRAME_PREFIX_SIZE
    if end - body_start < length:
        raise TornTail(offset, f"frame body truncated ({end - body_start}/{length} bytes)")
    body = bytes(buf[body_start : body_start + length])
    if zlib.crc32(body) != crc:
        raise TornTail(offset, "crc mismatch")
    version, lsn = _BODY_PREFIX.unpack_from(body, 0)
    if version != FORMAT_VERSION:
        raise CodecError(f"unsupported format version {version} at byte {offset}")
    pos = _BODY_PREFIX.size
    payload, pos = decode_payload(body, pos)
    labels, pos = decode_value(body, pos)
    if pos != length:
        raise CodecError(
            f"frame at byte {offset} has {length - pos} trailing bytes after decode"
        )
    return LogRecord(lsn=lsn, payload=payload, labels=labels), body_start + length


def encode_file_header(base_lsn: int) -> bytes:
    """The segment-file header: magic, format version, base LSN."""
    return _FILE_HEADER.pack(FILE_MAGIC, FORMAT_VERSION, base_lsn)


def decode_file_header(buf: bytes) -> int:
    """Validate a segment-file header and return its base LSN."""
    if len(buf) < FILE_HEADER_SIZE:
        raise CodecError("segment file shorter than its header")
    magic, version, base_lsn = _FILE_HEADER.unpack_from(buf, 0)
    if magic != FILE_MAGIC:
        raise CodecError(f"bad segment magic {magic!r}")
    if version != FORMAT_VERSION:
        raise CodecError(f"unsupported segment format version {version}")
    return base_lsn


class ScanResult(NamedTuple):
    """Outcome of :func:`scan_frames` over one buffer."""

    records: int
    clean: bool
    tear_offset: int | None
    tear_reason: str | None


def iter_frames(buf: bytes, offset: int = 0) -> Iterator[LogRecord]:
    """Yield decoded records from ``buf`` until the data ends or tears.

    The torn-tail rule applied as an iterator: a clean end-of-buffer and
    a torn record both simply stop the stream.  Callers that need to
    distinguish (the cold-start open path, ``logdump``) use
    :func:`decode_frame` directly and catch :class:`TornTail`.
    """
    while True:
        try:
            record, offset = decode_frame(buf, offset)
        except TornTail:
            return
        yield record
