"""The binary wire format: struct-packed, versioned, CRC-guarded.

A log that survives a crash can only contain *bytes*, so every payload
in :mod:`repro.logmgr.records` has an exact binary encoding here.  The
format is deliberately boring — little-endian ``struct`` packing, no
compression, no pointers — because boring formats are the ones a
recovery scan can trust after a kill -9.

Record frame (what :class:`~repro.logmgr.filelog.FileLogStore` appends
to a segment file)::

    u32 body_length | u32 crc32(body) | body

    body = u8 format_version | u64 lsn | tagged payload | tagged labels

One frame per record, one CRC per record — the per-frame CRC is what
gives the torn-tail rule *record* granularity, so the batched append
path (:func:`encode_window`) keeps it: it packs a whole group-commit
window of frames into one pre-grown ``bytearray`` for one downstream
``write``, byte-identical to concatenated :func:`encode_record`
frames.  What it batches away is everything that made per-record
encoding slow in Python — per-record ``bytes`` allocations, repeated
string/tag encoding (memoized), and per-record syscalls.

A finished segment may be **sealed** by a 20-byte sidecar file
(``<segment>.seal``)::

    "RSEA" | u32 crc32(frame region) | u64 region_length | u32 records

letting the happy-path reader verify one checksum for the whole segment
(a single C-speed ``crc32`` pass) and then walk frames trusting their
length fields.  The seal lives *next to* the segment, never inside it,
so segment bytes — and therefore torn-tail semantics — are identical
with or without one.  A missing, stale (wrong region length), or
damaged seal degrades to the per-frame CRC walk: same records, same
tears, just slower.  That is also the whole v1-compatibility story —
pre-seal segment directories simply have no sidecars.

The **torn-tail rule**: a frame whose length field runs past the end of
the file, or whose body fails the CRC check, ends the stable log — the
decoder reports the tear and refuses to look further, because bytes
after a torn record are firmware noise, not history.  This is how a
write interrupted mid-``fsync`` is detected and discarded at the next
cold start.

Values inside payloads (cell contents, action arguments, label values)
are encoded with a small tagged value codec covering ``None``, bools,
ints, floats, strings, bytes, tuples, lists, and dicts — everything the
engines, the B-tree, and the checkpoint snapshots actually log.  A
payload holding anything else (e.g. an abstract theory
:class:`~repro.core.model.Operation`) raises :class:`CodecError`; such
logs are in-memory-only by construction.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterator, NamedTuple

from repro.logmgr.records import (
    CheckpointRecord,
    LogRecord,
    LogicalRedo,
    MultiPageRedo,
    PageAction,
    PhysicalRedo,
    PhysiologicalRedo,
)

FORMAT_VERSION = 1

# Segment-file header: magic, format version, base LSN of the file.
FILE_MAGIC = b"RLOG"
_FILE_HEADER = struct.Struct("<4sBQ")
FILE_HEADER_SIZE = _FILE_HEADER.size

# Frame prefix: body length, CRC32 of the body.
_FRAME_PREFIX = struct.Struct("<II")
FRAME_PREFIX_SIZE = _FRAME_PREFIX.size

_BODY_PREFIX = struct.Struct("<BQ")

# Both prefixes at once — the scan hot loop reads a frame's length,
# CRC, format version, and LSN with a single 17-byte unpack.
_FRAME_AND_BODY_PREFIX = struct.Struct("<IIBQ")

# Segment seal (sidecar ``.seal`` file contents): magic, CRC32 of the
# frame region, region length, record count.
SEAL_MAGIC = b"RSEA"
_SEAL = struct.Struct("<4sIQI")
SEGMENT_SEAL_SIZE = _SEAL.size

# Per-record framing overhead around the ``payload | labels`` region:
# the 8-byte frame prefix plus the 9-byte ``version | lsn`` body prefix.
# All byte accounting (``LogRecord.size_bytes``, ``stable_bytes``) is
# ``region + RECORD_OVERHEAD`` — exactly the frame size — so warm and
# cold starts agree without re-encoding anything.
RECORD_OVERHEAD = FRAME_PREFIX_SIZE + _BODY_PREFIX.size  # 17

# ----------------------------------------------------------------------
# Tags
# ----------------------------------------------------------------------

# Value tags (one byte each).
_V_NONE = 0x00
_V_TRUE = 0x01
_V_FALSE = 0x02
_V_INT = 0x03       # i64
_V_BIGINT = 0x04    # u32 length + signed big-endian bytes
_V_FLOAT = 0x05     # f64
_V_STR = 0x06       # u32 length + utf-8
_V_BYTES = 0x07     # u32 length + raw
_V_TUPLE = 0x08     # u32 count + values
_V_LIST = 0x09      # u32 count + values
_V_DICT = 0x0A      # u32 count + key/value pairs

# Payload tags.
PAYLOAD_PHYSICAL = 0x11
PAYLOAD_PHYSIOLOGICAL = 0x12
PAYLOAD_LOGICAL = 0x13
PAYLOAD_MULTIPAGE = 0x14
PAYLOAD_CHECKPOINT = 0x15

PAYLOAD_NAMES = {
    PAYLOAD_PHYSICAL: "PhysicalRedo",
    PAYLOAD_PHYSIOLOGICAL: "PhysiologicalRedo",
    PAYLOAD_LOGICAL: "LogicalRedo",
    PAYLOAD_MULTIPAGE: "MultiPageRedo",
    PAYLOAD_CHECKPOINT: "CheckpointRecord",
}

PAYLOAD_CLASSES = {
    PAYLOAD_PHYSICAL: PhysicalRedo,
    PAYLOAD_PHYSIOLOGICAL: PhysiologicalRedo,
    PAYLOAD_LOGICAL: LogicalRedo,
    PAYLOAD_MULTIPAGE: MultiPageRedo,
    PAYLOAD_CHECKPOINT: CheckpointRecord,
}

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class CodecError(ValueError):
    """A payload or value the wire format cannot represent (encode side)
    or malformed bytes that are not a clean torn tail (decode side)."""


class TornTail(Exception):
    """A frame failed the length or CRC check: the stable log ends here.

    Carries the byte ``offset`` of the tear and a human ``reason`` —
    the decode loop raises it, and scanners catch it to stop cleanly.
    """

    def __init__(self, offset: int, reason: str):
        super().__init__(f"torn log tail at byte {offset}: {reason}")
        self.offset = offset
        self.reason = reason


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------

def encode_value(value: Any, out: bytearray) -> None:
    """Append the tagged encoding of ``value`` to ``out``.

    Bools are checked before ints (``bool`` is an ``int`` subclass);
    ints outside i64 take the big-int path so checkpoint counters can
    never silently wrap.
    """
    if value is None:
        out += _U8.pack(_V_NONE)
    elif value is True:
        out += _U8.pack(_V_TRUE)
    elif value is False:
        out += _U8.pack(_V_FALSE)
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out += _U8.pack(_V_INT)
            out += _I64.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            out += _U8.pack(_V_BIGINT)
            out += _U32.pack(len(raw))
            out += raw
    elif isinstance(value, float):
        out += _U8.pack(_V_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _U8.pack(_V_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, bytes):
        out += _U8.pack(_V_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif isinstance(value, tuple):
        out += _U8.pack(_V_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, list):
        out += _U8.pack(_V_LIST)
        out += _U32.pack(len(value))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, dict):
        out += _U8.pack(_V_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            encode_value(key, out)
            encode_value(item, out)
    else:
        raise CodecError(
            f"value of type {type(value).__name__!r} has no wire encoding"
        )


def decode_value(buf: bytes, offset: int) -> tuple[Any, int]:
    """Decode one tagged value at ``offset``; returns (value, next offset)."""
    try:
        tag = buf[offset]
    except IndexError:
        raise CodecError(f"value truncated at byte {offset}") from None
    offset += 1
    if tag == _V_NONE:
        return None, offset
    if tag == _V_TRUE:
        return True, offset
    if tag == _V_FALSE:
        return False, offset
    try:
        if tag == _V_INT:
            return _I64.unpack_from(buf, offset)[0], offset + 8
        if tag == _V_FLOAT:
            return _F64.unpack_from(buf, offset)[0], offset + 8
        if tag in (_V_BIGINT, _V_STR, _V_BYTES):
            (length,) = _U32.unpack_from(buf, offset)
            offset += 4
            raw = bytes(buf[offset : offset + length])
            if len(raw) != length:
                raise CodecError(f"value truncated at byte {offset}")
            offset += length
            if tag == _V_BIGINT:
                return int.from_bytes(raw, "big", signed=True), offset
            if tag == _V_STR:
                return raw.decode("utf-8"), offset
            return raw, offset
        if tag in (_V_TUPLE, _V_LIST):
            (count,) = _U32.unpack_from(buf, offset)
            offset += 4
            items = []
            for _ in range(count):
                item, offset = decode_value(buf, offset)
                items.append(item)
            return (tuple(items) if tag == _V_TUPLE else items), offset
        if tag == _V_DICT:
            (count,) = _U32.unpack_from(buf, offset)
            offset += 4
            result: dict = {}
            for _ in range(count):
                key, offset = decode_value(buf, offset)
                item, offset = decode_value(buf, offset)
                result[key] = item
            return result, offset
    except struct.error:
        raise CodecError(f"value truncated at byte {offset}") from None
    raise CodecError(f"unknown value tag 0x{tag:02x} at byte {offset - 1}")


# ----------------------------------------------------------------------
# Payload codec
# ----------------------------------------------------------------------

def _encode_action(action: PageAction, out: bytearray) -> None:
    encode_value(action.kind, out)
    encode_value(action.args, out)


def _decode_action(buf: bytes, offset: int) -> tuple[PageAction, int]:
    kind, offset = decode_value(buf, offset)
    args, offset = decode_value(buf, offset)
    return PageAction(kind, args), offset


def payload_tag(payload: Any) -> int:
    """The wire tag for ``payload`` (CodecError for unencodable types)."""
    if isinstance(payload, PhysicalRedo):
        return PAYLOAD_PHYSICAL
    if isinstance(payload, PhysiologicalRedo):
        return PAYLOAD_PHYSIOLOGICAL
    if isinstance(payload, LogicalRedo):
        return PAYLOAD_LOGICAL
    if isinstance(payload, MultiPageRedo):
        return PAYLOAD_MULTIPAGE
    if isinstance(payload, CheckpointRecord):
        return PAYLOAD_CHECKPOINT
    raise CodecError(
        f"payload of type {type(payload).__name__!r} has no wire encoding "
        f"(only the §6 record types are durable)"
    )


def encode_payload(payload: Any, out: bytearray) -> None:
    """Append ``u8 tag`` plus the payload body to ``out``."""
    tag = payload_tag(payload)
    out += _U8.pack(tag)
    if tag == PAYLOAD_PHYSICAL:
        encode_value(payload.page_id, out)
        encode_value(payload.cells, out)
        encode_value(payload.whole_page, out)
    elif tag == PAYLOAD_PHYSIOLOGICAL:
        encode_value(payload.page_id, out)
        _encode_action(payload.action, out)
    elif tag == PAYLOAD_LOGICAL:
        encode_value(payload.description, out)
    elif tag == PAYLOAD_MULTIPAGE:
        encode_value(payload.read_page_ids, out)
        out += _U32.pack(len(payload.writes))
        for page_id, actions in payload.writes.items():
            encode_value(page_id, out)
            out += _U32.pack(len(actions))
            for action in actions:
                _encode_action(action, out)
    else:  # PAYLOAD_CHECKPOINT
        encode_value(payload.data, out)


def decode_payload(buf: bytes, offset: int) -> tuple[Any, int]:
    """Decode one tagged payload at ``offset``; returns (payload, next)."""
    try:
        tag = buf[offset]
    except IndexError:
        raise CodecError(f"payload truncated at byte {offset}") from None
    offset += 1
    if tag == PAYLOAD_PHYSICAL:
        page_id, offset = decode_value(buf, offset)
        cells, offset = decode_value(buf, offset)
        whole_page, offset = decode_value(buf, offset)
        return PhysicalRedo(page_id, cells, whole_page), offset
    if tag == PAYLOAD_PHYSIOLOGICAL:
        page_id, offset = decode_value(buf, offset)
        action, offset = _decode_action(buf, offset)
        return PhysiologicalRedo(page_id, action), offset
    if tag == PAYLOAD_LOGICAL:
        description, offset = decode_value(buf, offset)
        return LogicalRedo(description), offset
    if tag == PAYLOAD_MULTIPAGE:
        read_page_ids, offset = decode_value(buf, offset)
        try:
            (n_writes,) = _U32.unpack_from(buf, offset)
        except struct.error:
            raise CodecError(f"payload truncated at byte {offset}") from None
        offset += 4
        writes: dict = {}
        for _ in range(n_writes):
            page_id, offset = decode_value(buf, offset)
            try:
                (n_actions,) = _U32.unpack_from(buf, offset)
            except struct.error:
                raise CodecError(f"payload truncated at byte {offset}") from None
            offset += 4
            actions = []
            for _ in range(n_actions):
                action, offset = _decode_action(buf, offset)
                actions.append(action)
            writes[page_id] = tuple(actions)
        return MultiPageRedo(read_page_ids, writes), offset
    if tag == PAYLOAD_CHECKPOINT:
        data, offset = decode_value(buf, offset)
        return CheckpointRecord(data), offset
    raise CodecError(f"unknown payload tag 0x{tag:02x} at byte {offset - 1}")


# ----------------------------------------------------------------------
# Record frames
# ----------------------------------------------------------------------

def encode_record(record: LogRecord) -> bytes:
    """The full wire frame for ``record`` (prefix + CRC'd body)."""
    body = bytearray(_BODY_PREFIX.pack(FORMAT_VERSION, record.lsn))
    encode_payload(record.payload, body)
    encode_value(record.labels, body)
    return _FRAME_PREFIX.pack(len(body), zlib.crc32(body)) + bytes(body)


def _value_size(value: Any) -> int:
    """The exact byte count :func:`encode_value` would append — computed
    arithmetically, without materializing anything.  Branch order mirrors
    :func:`encode_value` so subclasses take the same path."""
    if value is None or value is True or value is False:
        return 1
    if isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            return 9
        return 5 + (value.bit_length() + 8) // 8
    if isinstance(value, float):
        return 9
    if isinstance(value, str):
        return 5 + len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return 5 + len(value)
    if isinstance(value, (tuple, list)):
        return 5 + sum(_value_size(item) for item in value)
    if isinstance(value, dict):
        return 5 + sum(
            _value_size(key) + _value_size(item) for key, item in value.items()
        )
    raise CodecError(f"value of type {type(value).__name__!r} has no wire encoding")


def _payload_size(payload: Any) -> int:
    """The exact byte count of ``u8 tag`` plus the payload body."""
    tag = payload_tag(payload)
    if tag == PAYLOAD_PHYSICAL:
        return (
            1
            + _value_size(payload.page_id)
            + _value_size(payload.cells)
            + _value_size(payload.whole_page)
        )
    if tag == PAYLOAD_PHYSIOLOGICAL:
        return (
            1
            + _value_size(payload.page_id)
            + _value_size(payload.action.kind)
            + _value_size(payload.action.args)
        )
    if tag == PAYLOAD_LOGICAL:
        return 1 + _value_size(payload.description)
    if tag == PAYLOAD_MULTIPAGE:
        total = 1 + _value_size(payload.read_page_ids) + 4
        for page_id, actions in payload.writes.items():
            total += _value_size(page_id) + 4
            for action in actions:
                total += _value_size(action.kind) + _value_size(action.args)
        return total
    return 1 + _value_size(payload.data)  # PAYLOAD_CHECKPOINT


def encoded_size(record: LogRecord) -> int:
    """The exact on-wire byte count of ``record``'s v1 frame.

    Computed analytically (no encoding, no CRC) — the batch encoder's
    pre-sizing and the log's byte accounting both lean on this being
    exactly ``len(encode_record(record))``, which a property test pins.
    """
    return RECORD_OVERHEAD + _payload_size(record.payload) + _value_size(record.labels)


def is_encodable(payload: Any) -> bool:
    """Can this payload take the durable path?  (Type check only — a
    known payload type holding an exotic value still raises
    :class:`CodecError` at encode time.)"""
    return isinstance(
        payload,
        (
            PhysicalRedo,
            PhysiologicalRedo,
            LogicalRedo,
            MultiPageRedo,
            CheckpointRecord,
        ),
    )


def decode_frame(buf: bytes, offset: int) -> tuple[LogRecord, int]:
    """Decode one frame at ``offset``; returns (record, next offset).

    Raises :class:`TornTail` when the frame is incomplete or its CRC
    fails — by the torn-tail rule the caller must treat ``offset`` as
    the end of the stable log.  Raises :class:`CodecError` for bytes
    that pass the CRC but decode to garbage (a format bug, not a tear).
    """
    end = len(buf)
    if offset == end:
        raise TornTail(offset, "end of data")
    if end - offset < FRAME_PREFIX_SIZE:
        raise TornTail(offset, "truncated frame prefix")
    length, crc = _FRAME_PREFIX.unpack_from(buf, offset)
    body_start = offset + FRAME_PREFIX_SIZE
    if end - body_start < length:
        raise TornTail(offset, f"frame body truncated ({end - body_start}/{length} bytes)")
    body = bytes(buf[body_start : body_start + length])
    if zlib.crc32(body) != crc:
        raise TornTail(offset, "crc mismatch")
    version, lsn = _BODY_PREFIX.unpack_from(body, 0)
    if version != FORMAT_VERSION:
        raise CodecError(f"unsupported format version {version} at byte {offset}")
    pos = _BODY_PREFIX.size
    payload, pos = decode_payload(body, pos)
    labels, pos = decode_value(body, pos)
    if pos != length:
        raise CodecError(
            f"frame at byte {offset} has {length - pos} trailing bytes after decode"
        )
    return LogRecord(lsn=lsn, payload=payload, labels=labels), body_start + length


def encode_file_header(base_lsn: int) -> bytes:
    """The segment-file header: magic, format version, base LSN."""
    return _FILE_HEADER.pack(FILE_MAGIC, FORMAT_VERSION, base_lsn)


def decode_file_header(buf: bytes) -> int:
    """Validate a segment-file header and return its base LSN."""
    if len(buf) < FILE_HEADER_SIZE:
        raise CodecError("segment file shorter than its header")
    magic, version, base_lsn = _FILE_HEADER.unpack_from(buf, 0)
    if magic != FILE_MAGIC:
        raise CodecError(f"bad segment magic {magic!r}")
    if version != FORMAT_VERSION:
        raise CodecError(f"unsupported segment format version {version}")
    return base_lsn


class ScanResult(NamedTuple):
    """Outcome of :func:`scan_frames` over one buffer."""

    records: int
    clean: bool
    tear_offset: int | None
    tear_reason: str | None


def iter_frames(buf: bytes, offset: int = 0) -> Iterator[LogRecord]:
    """Yield decoded records from ``buf`` until the data ends or tears.

    The torn-tail rule applied as an iterator: a clean end-of-buffer and
    a torn record both simply stop the stream.  Callers that need to
    distinguish (the cold-start open path, ``logdump``) use
    :func:`decode_frame` directly and catch :class:`TornTail`.
    """
    while True:
        try:
            record, offset = decode_frame(buf, offset)
        except TornTail:
            return
        yield record


# ----------------------------------------------------------------------
# Batched window encoding (the append hot path)
# ----------------------------------------------------------------------

# The window encoder is the append hot path: one pass, one pre-sized
# bytearray, one crc32 for the whole window.  Repeated strings (page
# ids, action kinds, keys) dominate real record streams, so their tagged
# encodings are memoized; the caches are bounded and shared process-wide
# (they hold pure functions of their keys, so sharing is safe).
_STR_CACHE: dict[str, bytes] = {}
_PHYSIO_PREFIX_CACHE: dict[str, bytes] = {}
_STR_CACHE_LIMIT = 4096
_CACHED_STR_MAX = 128
_TUPLE_HEADERS = [_U8.pack(_V_TUPLE) + _U32.pack(n) for n in range(9)]
_EMPTY_DICT = _U8.pack(_V_DICT) + _U32.pack(0)
_INT_TAG = _U8.pack(_V_INT)
_PHYSIO_TAG = _U8.pack(PAYLOAD_PHYSIOLOGICAL)
_PHYSICAL_TAG = _U8.pack(PAYLOAD_PHYSICAL)
_LOGICAL_TAG = _U8.pack(PAYLOAD_LOGICAL)


def _cached_str(value: str, cache: dict, prefix: bytes = b"") -> bytes:
    """Memoized ``prefix + tagged-string`` encoding (bounded cache)."""
    raw = value.encode("utf-8")
    encoded = prefix + _U8.pack(_V_STR) + _U32.pack(len(raw)) + raw
    if len(raw) <= _CACHED_STR_MAX:
        if len(cache) >= _STR_CACHE_LIMIT:
            cache.clear()
        cache[value] = encoded
    return encoded


_FRAME_PAD = bytes(FRAME_PREFIX_SIZE)


def encode_window(records) -> bytearray:
    """Encode a dense LSN window of records as one packed byte blob.

    The append hot path: every frame in the window lands in one
    pre-grown ``bytearray`` (one allocation curve, one downstream
    ``write``) instead of one ``bytes`` object per record.  Each record
    still gets its own v1 frame with its own CRC — per-frame CRCs are
    what give the torn-tail rule *record* granularity (a tear inside a
    window must only lose the frames at and after the tear, and the
    surviving prefix must stay appendable without rewriting any frame
    header) — but the framing, tagging, and string encoding are batched
    and memoized, which is where the per-record Python cost actually
    lived.  Output bytes are identical to concatenated
    :func:`encode_record` frames.

    Raises :class:`CodecError` for an unencodable payload or a
    non-dense window (the manager hands over contiguous slices of its
    pending tail, so density is an invariant worth asserting cheaply).
    """
    n = len(records)
    if n == 0:
        raise CodecError("cannot encode an empty window")
    base_lsn = records[0].lsn
    if records[-1].lsn - base_lsn != n - 1:
        raise CodecError(
            f"window is not LSN-dense: [{base_lsn}..{records[-1].lsn}] "
            f"for {n} records"
        )
    out = bytearray()
    ln = len
    sc, pc = _STR_CACHE, _PHYSIO_PREFIX_CACHE
    i64 = _I64.pack
    tuple_headers = _TUPLE_HEADERS
    body_prefix = _BODY_PREFIX.pack
    frame_fixup = _FRAME_PREFIX.pack_into
    crc32 = zlib.crc32
    setter = object.__setattr__
    for record in records:
        frame_start = ln(out)
        out += _FRAME_PAD
        out += body_prefix(FORMAT_VERSION, record.lsn)
        payload = record.payload
        kind_of = type(payload)
        if kind_of is PhysiologicalRedo:
            # tag + page_id, then action kind, then the args tuple —
            # each piece memoized or packed straight into ``out``.
            pid = payload.page_id
            try:
                out += pc[pid]
            except (KeyError, TypeError):
                if type(pid) is str:
                    out += _cached_str(pid, pc, _PHYSIO_TAG)
                else:
                    out += _PHYSIO_TAG
                    encode_value(pid, out)
            action = payload.action
            kind = action.kind
            try:
                out += sc[kind]
            except (KeyError, TypeError):
                if type(kind) is str:
                    out += _cached_str(kind, sc)
                else:
                    encode_value(kind, out)
            args = action.args
            n_args = ln(args)
            if n_args < 9:
                out += tuple_headers[n_args]
            else:
                out += _U8.pack(_V_TUPLE) + _U32.pack(n_args)
            for item in args:
                t = type(item)
                if t is int:
                    try:
                        out += _INT_TAG
                        out += i64(item)
                    except struct.error:
                        del out[-1:]
                        encode_value(item, out)
                elif t is str:
                    try:
                        out += sc[item]
                    except KeyError:
                        out += _cached_str(item, sc)
                else:
                    encode_value(item, out)
        elif kind_of is PhysicalRedo:
            out += _PHYSICAL_TAG
            pid = payload.page_id
            if type(pid) is str:
                try:
                    out += sc[pid]
                except KeyError:
                    out += _cached_str(pid, sc)
            else:
                encode_value(pid, out)
            encode_value(payload.cells, out)
            encode_value(payload.whole_page, out)
        elif kind_of is LogicalRedo:
            out += _LOGICAL_TAG
            encode_value(payload.description, out)
        else:
            encode_payload(payload, out)
        labels = record.labels
        if labels:
            encode_value(labels, out)
        else:
            out += _EMPTY_DICT
        body_start = frame_start + FRAME_PREFIX_SIZE
        body_len = ln(out) - body_start
        frame_fixup(
            out, frame_start, body_len, crc32(memoryview(out)[body_start:])
        )
        # Cache the record's exact frame size while we have it for
        # free — eviction and byte accounting read it without
        # re-measuring.
        setter(record, "_encoded_size", body_len + FRAME_PREFIX_SIZE)
    return out


# ----------------------------------------------------------------------
# Segment seals (sidecar checksum files)
# ----------------------------------------------------------------------

def encode_seal(region_crc: int, region_len: int, count: int) -> bytes:
    """The 20-byte seal of a finished segment file (sidecar contents)."""
    return _SEAL.pack(SEAL_MAGIC, region_crc, region_len, count)


def parse_seal(blob: bytes | None) -> tuple[int, int, int] | None:
    """Parse exactly the 20 seal bytes: ``(crc, region_len, count)``,
    or None when they are absent, missized, or missing the magic."""
    if blob is None or len(blob) != SEGMENT_SEAL_SIZE or blob[:4] != SEAL_MAGIC:
        return None
    _magic, crc, region_len, count = _SEAL.unpack(blob)
    return crc, region_len, count


def verify_seal(buf, blob: bytes | None) -> tuple[int, int] | None:
    """Check a segment buffer against its sidecar seal in one C-speed
    ``crc32`` pass: returns ``(region_end, count)`` when the seal is
    present, covers exactly this buffer, and its CRC matches, else None
    (no seal, a stale one — the file grew or shrank since sealing — or
    a damaged one; the caller falls back to the per-frame CRC walk)."""
    parsed = parse_seal(blob)
    if parsed is None:
        return None
    crc, region_len, count = parsed
    end = FILE_HEADER_SIZE + region_len
    if end != len(buf):
        return None
    if zlib.crc32(memoryview(buf)[FILE_HEADER_SIZE:end]) != crc:
        return None
    return end, count


# ----------------------------------------------------------------------
# The zero-copy frame walker (the one shared scanner)
# ----------------------------------------------------------------------

def _raise_tear(buf, offset: int, end: int, verify_crc: bool):
    """Diagnose a frame too short for the combined 17-byte prefix unpack
    (only possible in the last few bytes of a region), raising the same
    :class:`TornTail` the check-by-check walk would have."""
    if end - offset < FRAME_PREFIX_SIZE:
        raise TornTail(offset, "truncated frame prefix")
    length, crc = _FRAME_PREFIX.unpack_from(buf, offset)
    body_start = offset + FRAME_PREFIX_SIZE
    if end - body_start < length:
        raise TornTail(
            offset, f"frame body truncated ({end - body_start}/{length} bytes)"
        )
    if (
        verify_crc
        and zlib.crc32(memoryview(buf)[body_start : body_start + length]) != crc
    ):
        raise TornTail(offset, "crc mismatch")
    # The combined unpack failed with >= 8 bytes of frame present, so the
    # body stops short of a full record header.
    raise TornTail(offset, "frame body truncated (no record header)")


def walk_frames(buf, offset: int = FILE_HEADER_SIZE, end: int | None = None,
                verify_crc: bool = True):
    """Walk wire frames structurally: yields ``(lsn, body_lo, body_hi)``
    per frame, where ``buf[body_lo:body_hi]`` is the record's
    ``payload | labels`` region (after the frame and body prefixes).
    No record bytes are copied or decoded — the caller slices lazily.

    Raises :class:`TornTail` at a damaged or truncated frame and
    :class:`CodecError` for well-checksummed garbage.  With
    ``verify_crc=False`` (a caller already verified the segment footer)
    the walk trusts length fields and touches only the 17 prefix bytes
    per record.
    """
    mv = memoryview(buf)
    if end is None:
        end = len(buf)
    crc32 = zlib.crc32
    unpack_frame = _FRAME_AND_BODY_PREFIX.unpack_from
    body_prefix_size = _BODY_PREFIX.size
    while offset < end:
        # One 17-byte unpack covers both prefixes (frame + record header).
        # It may read garbage past ``end`` or a short frame — the checks
        # below validate before any of the values are trusted.
        try:
            length, crc, version, lsn = unpack_frame(buf, offset)
        except struct.error:
            _raise_tear(buf, offset, end, verify_crc)
        if end - offset < FRAME_PREFIX_SIZE:
            raise TornTail(offset, "truncated frame prefix")
        body_start = offset + FRAME_PREFIX_SIZE
        if end - body_start < length:
            raise TornTail(
                offset, f"frame body truncated ({end - body_start}/{length} bytes)"
            )
        if verify_crc and crc32(mv[body_start : body_start + length]) != crc:
            raise TornTail(offset, "crc mismatch")
        if length < body_prefix_size:
            raise TornTail(offset, "frame body truncated (no record header)")
        if version != FORMAT_VERSION:
            raise CodecError(
                f"unsupported format version {version} at byte {offset}"
            )
        yield lsn, body_start + body_prefix_size, body_start + length
        offset = body_start + length


def read_frame_at(buf, offset: int, verify_crc: bool = True):
    """Read exactly one frame at a known byte ``offset``: returns
    ``(lsn, body_lo, body_hi)`` like one step of :func:`walk_frames`.

    This is the random-access primitive the per-page redo index relies
    on: given a ``(segment, offset)`` pair from a sidecar, one page's
    log chain is fetched frame by frame without walking — or decoding —
    anything in between.  The offset must land on a frame boundary;
    anything else fails the length/CRC checks and raises
    :class:`TornTail` (a stale index entry, treated like damage).
    """
    end = len(buf)
    if end - offset < RECORD_OVERHEAD:
        raise TornTail(offset, "truncated frame prefix")
    try:
        length, crc, version, lsn = _FRAME_AND_BODY_PREFIX.unpack_from(buf, offset)
    except struct.error:
        raise TornTail(offset, "truncated frame prefix") from None
    body_start = offset + FRAME_PREFIX_SIZE
    if end - body_start < length:
        raise TornTail(
            offset, f"frame body truncated ({end - body_start}/{length} bytes)"
        )
    if verify_crc and zlib.crc32(memoryview(buf)[body_start : body_start + length]) != crc:
        raise TornTail(offset, "crc mismatch")
    if length < _BODY_PREFIX.size:
        raise TornTail(offset, "frame body truncated (no record header)")
    if version != FORMAT_VERSION:
        raise CodecError(f"unsupported format version {version} at byte {offset}")
    return lsn, body_start + _BODY_PREFIX.size, body_start + length


def iter_record_views(buf, offset: int = FILE_HEADER_SIZE, end: int | None = None,
                      verify_crc: bool = True, start_lsn: int = 0):
    """The LSN-filtered view of :func:`walk_frames`: yields
    ``(lsn, lo, hi)`` per record at or above ``start_lsn``, where
    ``buf[lo:hi]`` is its ``payload | labels`` encoding."""
    if start_lsn <= 0:
        yield from walk_frames(buf, offset, end, verify_crc)
        return
    for lsn, lo, hi in walk_frames(buf, offset, end, verify_crc):
        if lsn >= start_lsn:
            yield lsn, lo, hi


def decode_record_body(lsn: int, body: bytes) -> LogRecord:
    """Materialize a full :class:`LogRecord` from one record's
    ``payload | labels`` bytes (as yielded by :func:`iter_record_views`)."""
    payload, pos = decode_payload(body, 0)
    labels, pos = decode_value(body, pos)
    if pos != len(body):
        raise CodecError(
            f"record LSN {lsn} has {len(body) - pos} trailing bytes after decode"
        )
    record = LogRecord(lsn=lsn, payload=payload, labels=labels)
    object.__setattr__(record, "_encoded_size", len(body) + RECORD_OVERHEAD)
    return record


_UNSET = object()


class LazyRecord:
    """A log record that defers payload decoding until someone asks.

    Scans that only count, filter by LSN, or peek at the payload *type*
    never pay the tagged-value decode; consumers that do touch
    ``payload``/``labels`` get them decoded once and cached.  The body
    bytes are copied out of the scan buffer at construction, so a
    record outlives the mmap it was read from.

    Equality and hashing match :class:`LogRecord` — ``(lsn, payload)``,
    labels excluded — so mixed comparisons work in either direction
    (``LogRecord.__eq__`` returns NotImplemented for foreign classes,
    which hands control to this one).
    """

    __slots__ = ("lsn", "_body", "_payload", "_labels")

    def __init__(self, lsn: int, body: bytes):
        self.lsn = lsn
        self._body = body
        self._payload = _UNSET
        self._labels = _UNSET

    def _decode(self) -> None:
        body = self._body
        payload, pos = decode_payload(body, 0)
        labels, pos = decode_value(body, pos)
        if pos != len(body):
            raise CodecError(
                f"record LSN {self.lsn} has {len(body) - pos} trailing "
                f"bytes after decode"
            )
        self._payload = payload
        self._labels = labels

    @property
    def payload(self) -> Any:
        if self._payload is _UNSET:
            self._decode()
        return self._payload

    @property
    def labels(self) -> dict:
        if self._labels is _UNSET:
            self._decode()
        return self._labels

    @property
    def operation(self) -> Any:
        """The payload under its theory-core name (mirrors LogRecord)."""
        return self.payload

    @property
    def payload_tag(self) -> int:
        """The wire tag of the payload — readable without decoding."""
        return self._body[0]

    def size_bytes(self) -> int:
        """V1-equivalent frame length (same accounting as LogRecord)."""
        return len(self._body) + RECORD_OVERHEAD

    def __eq__(self, other) -> bool:
        if other is self:
            return True
        try:
            return self.lsn == other.lsn and self.payload == other.payload
        except AttributeError:
            return NotImplemented

    def __hash__(self) -> int:
        return hash((self.lsn, self.payload))

    def __str__(self) -> str:
        return f"[{self.lsn}] {self.payload}"

    def __repr__(self) -> str:
        return f"LazyRecord(lsn={self.lsn}, {len(self._body)}B)"
