"""The log manager: append, force, crash.

The manager is the only component that assigns LSNs, so "LSNs increase
monotonically with each new operation" (§6.3) holds by construction.  The
log has a *stable prefix* (forced to disk) and a *volatile tail*; a crash
truncates the tail.  :meth:`LogManager.wal_check` implements the
write-ahead rule a cache manager must consult before flushing a page: the
record that produced a page's latest update must be stable before the
page may reach disk.
"""

from __future__ import annotations

from typing import Iterator

from repro.logmgr.records import LogEntry, Payload


class WalViolation(RuntimeError):
    """A page flush was attempted before its log records were stable."""


class LogManager:
    """An append-only log with an explicit stable/volatile boundary."""

    def __init__(self):
        self._entries: list[LogEntry] = []
        self._stable_count = 0
        self.forced_flushes = 0

    # ------------------------------------------------------------------
    # Append / force
    # ------------------------------------------------------------------

    def append(self, payload: Payload) -> LogEntry:
        """Append ``payload`` with the next LSN; returns the entry."""
        entry = LogEntry(lsn=len(self._entries), payload=payload)
        self._entries.append(entry)
        return entry

    def flush(self, up_to_lsn: int | None = None) -> None:
        """Force the log to disk through ``up_to_lsn`` (default: all)."""
        if up_to_lsn is None:
            target = len(self._entries)
        else:
            target = min(up_to_lsn + 1, len(self._entries))
        if target > self._stable_count:
            self._stable_count = target
            self.forced_flushes += 1

    @property
    def next_lsn(self) -> int:
        return len(self._entries)

    @property
    def stable_lsn(self) -> int:
        """The highest LSN guaranteed on disk (-1 if none)."""
        return self._stable_count - 1

    def is_stable(self, lsn: int) -> bool:
        """Has the record at ``lsn`` been forced to disk?"""
        return lsn < self._stable_count

    def wal_check(self, page_lsn: int) -> None:
        """Raise :class:`WalViolation` unless every record up to
        ``page_lsn`` is stable — call before flushing a page tagged with
        that LSN."""
        if page_lsn >= self._stable_count:
            raise WalViolation(
                f"page tagged with LSN {page_lsn} but log is stable only "
                f"through {self.stable_lsn}"
            )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def entries(self, volatile: bool = True) -> list[LogEntry]:
        """All entries; with ``volatile=False`` only the stable prefix."""
        if volatile:
            return list(self._entries)
        return list(self._entries[: self._stable_count])

    def stable_entries(self) -> list[LogEntry]:
        """The stable prefix (what recovery will see)."""
        return self.entries(volatile=False)

    def entries_from(self, lsn: int, volatile: bool = True) -> Iterator[LogEntry]:
        """Entries with LSN >= ``lsn``, in order."""
        for entry in self.entries(volatile):
            if entry.lsn >= lsn:
                yield entry

    def entry(self, lsn: int) -> LogEntry:
        """The entry with exactly this LSN."""
        return self._entries[lsn]

    def stable_bytes(self) -> int:
        """Bytes in the stable prefix."""
        return sum(entry.size_bytes() for entry in self.stable_entries())

    def total_bytes(self) -> int:
        """Bytes in the whole log, volatile tail included."""
        return sum(entry.size_bytes() for entry in self._entries)

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Drop the volatile tail; the stable prefix survives."""
        self._entries = self._entries[: self._stable_count]

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"LogManager(entries={len(self._entries)}, "
            f"stable={self._stable_count})"
        )
