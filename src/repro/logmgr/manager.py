"""The log manager: the single LSN authority, segmented.

The manager is the *only* component that assigns LSNs — every record in
the system, whether a typed redo payload from a §6 method engine or an
abstract theory operation appended through :class:`repro.core.recovery.Log`,
goes through :meth:`LogManager.append`, so "LSNs increase monotonically
with each new operation" (§6.3) holds by construction, everywhere.

Storage is **segmented**: records live in fixed-size
:class:`LogSegment` runs rather than one unbounded list.  Each segment
knows its own stable boundary (how much of it has been forced), which is
what the cache manager's write-ahead check consults, and sealed segments
wholly behind a checkpoint can be retired by :meth:`truncate_until` —
bounded active memory instead of an ever-growing log.

The log has a *stable prefix* (forced to disk) and a *volatile tail*; a
crash truncates the tail.  :meth:`wal_check` implements the write-ahead
rule a cache manager must consult before flushing a page: the record
that produced a page's latest update must be stable before the page may
reach disk.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Iterator

from repro.logmgr.records import CheckpointRecord, LogRecord, Payload
from repro.obs.trace import NULL_TRACER, Tracer

DEFAULT_SEGMENT_SIZE = 1024


class WalViolation(RuntimeError):
    """A page flush was attempted before its log records were stable."""


class LogSegment:
    """One fixed-size run of consecutive records.

    ``base_lsn`` is the LSN of the first record; records are dense, so a
    segment covers ``[base_lsn, base_lsn + len(records))``.  The segment
    itself is dumb storage — stability is a property of the manager's
    watermark, exposed per segment via :meth:`LogManager.segment_stable_boundary`.
    """

    __slots__ = ("base_lsn", "records")

    def __init__(self, base_lsn: int):
        self.base_lsn = base_lsn
        self.records: list[LogRecord] = []

    @property
    def end_lsn(self) -> int:
        """The last LSN held (``base_lsn - 1`` when empty)."""
        return self.base_lsn + len(self.records) - 1

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"LogSegment(lsns=[{self.base_lsn}..{self.end_lsn}])"


class LogManager:
    """An append-only segmented log with an explicit stable/volatile boundary."""

    def __init__(
        self,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        tracer: Tracer | None = None,
    ):
        if segment_size < 1:
            raise ValueError("segment_size must be at least 1")
        self.segment_size = segment_size
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._segments: list[LogSegment] = [LogSegment(0)]
        self._next_lsn = 0
        self._stable_lsn = -1
        self._checkpoint_lsns: list[int] = []
        # Truncation bookkeeping: retired records stay countable even
        # after their segments leave memory.
        self._archived_records = 0
        self._archived_bytes = 0
        self._archived_type_counts: dict[type, int] = {}
        self._archive_sink: Callable[[LogSegment], None] | None = None
        self.forced_flushes = 0

    # ------------------------------------------------------------------
    # Append / force
    # ------------------------------------------------------------------

    def append(self, payload: Payload, **labels: Any) -> LogRecord:
        """Append ``payload`` with the next LSN; returns the record.

        This is the one place in the whole system where an LSN is born.
        """
        tail = self._segments[-1]
        if len(tail) >= self.segment_size:
            tail = LogSegment(self._next_lsn)
            self._segments.append(tail)
        record = LogRecord(lsn=self._next_lsn, payload=payload, labels=labels)
        tail.records.append(record)
        self._next_lsn += 1
        if isinstance(payload, CheckpointRecord):
            self._checkpoint_lsns.append(record.lsn)
        if self.tracer.enabled:
            self.tracer.event(
                "log.append", lsn=record.lsn, payload=type(payload).__name__
            )
        return record

    def flush(self, up_to_lsn: int | None = None) -> None:
        """Force the log to disk through ``up_to_lsn`` (default: all)."""
        target = self._next_lsn - 1 if up_to_lsn is None else min(up_to_lsn, self._next_lsn - 1)
        if target > self._stable_lsn:
            if self.tracer.enabled:
                self.tracer.event(
                    "log.force", from_lsn=self._stable_lsn, stable_lsn=target
                )
            self._stable_lsn = target
            self.forced_flushes += 1

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def stable_lsn(self) -> int:
        """The highest LSN guaranteed on disk (-1 if none)."""
        return self._stable_lsn

    @property
    def head_lsn(self) -> int:
        """The lowest LSN still held in memory (older ones were truncated)."""
        return self._segments[0].base_lsn

    def is_stable(self, lsn: int) -> bool:
        """Has the record at ``lsn`` been forced to disk?"""
        return lsn <= self._stable_lsn

    # ------------------------------------------------------------------
    # Segments and the write-ahead rule
    # ------------------------------------------------------------------

    def segments(self) -> list[LogSegment]:
        """The retained segments, oldest first (a read-only view)."""
        return list(self._segments)

    def segment_containing(self, lsn: int) -> LogSegment:
        """The retained segment holding ``lsn`` (KeyError if truncated or
        not yet appended)."""
        index = self._segment_index(lsn)
        if index is None:
            raise KeyError(f"LSN {lsn} is not in any retained segment")
        return self._segments[index]

    def _segment_index(self, lsn: int) -> int | None:
        if lsn < self.head_lsn or lsn >= self._next_lsn:
            return None
        bases = [segment.base_lsn for segment in self._segments]
        return bisect_right(bases, lsn) - 1

    def segment_stable_boundary(self, lsn: int) -> int:
        """The highest stable LSN within the segment holding ``lsn``.

        Returns the segment's ``base_lsn - 1`` when none of it is stable.
        LSNs older than the retained head were truncated, which is only
        legal once stable, so they report themselves.  This per-segment
        boundary is what :meth:`repro.cache.BufferPool.flush_page`
        consults for the write-ahead rule.
        """
        if lsn < self.head_lsn:
            return lsn
        if lsn >= self._next_lsn:
            # Beyond the tail: nothing there can ever be stable yet.
            return self._stable_lsn
        segment = self.segment_containing(lsn)
        return min(segment.end_lsn, self._stable_lsn)

    def wal_check(self, page_lsn: int) -> None:
        """Raise :class:`WalViolation` unless every record up to
        ``page_lsn`` is stable — call before flushing a page tagged with
        that LSN."""
        if self.segment_stable_boundary(page_lsn) < page_lsn:
            raise WalViolation(
                f"page tagged with LSN {page_lsn} but log is stable only "
                f"through {self.stable_lsn}"
            )

    def ensure_stable(self, lsn: int) -> None:
        """The install gate: make every record through ``lsn`` stable.

        This is the write-ahead rule phrased as the §5 install
        operation's side condition — a page node tagged through ``lsn``
        may install only once the log covers it.  Like real systems, an
        unstable boundary *forces* the log rather than failing (that is
        what "write-ahead" means); the final :meth:`wal_check` then
        raises only if even a forced flush could not cover the LSN (a
        genuinely torn protocol, e.g. a page tagged with a never-appended
        LSN).  The check consults the per-segment stable boundary, so it
        stays cheap no matter how long the log grows.
        """
        if self.segment_stable_boundary(lsn) < lsn:
            self.flush(up_to_lsn=lsn)
        self.wal_check(lsn)

    # ------------------------------------------------------------------
    # Checkpoints and truncation
    # ------------------------------------------------------------------

    @property
    def last_stable_checkpoint_lsn(self) -> int:
        """The LSN of the newest *stable* checkpoint record (-1 if none).

        Recovery starts its analysis scan here: everything a crash
        survivor needs lies in the checkpoint suffix.
        """
        index = bisect_right(self._checkpoint_lsns, self._stable_lsn)
        return self._checkpoint_lsns[index - 1] if index else -1

    def set_archive_sink(self, sink: Callable[[LogSegment], None] | None) -> None:
        """Install a callable receiving each truncated segment (an
        archive device for media recovery); None discards them."""
        self._archive_sink = sink

    def truncate_until(self, lsn: int) -> int:
        """Retire sealed, fully-stable segments wholly below ``lsn``.

        This is checkpoint-based truncation: once a checkpoint guarantees
        recovery never reads below ``lsn``, the segments under it can
        leave memory.  Only whole segments go — the log stays dense from
        :attr:`head_lsn` — and only stable ones: a volatile record can
        still be needed verbatim by the next flush.  Retired records stay
        visible to the byte/count accounting (and flow to the archive
        sink if one is installed, preserving media recovery).  Returns
        the number of records retired.
        """
        retired = 0
        cutoff = min(lsn - 1, self._stable_lsn)
        while len(self._segments) > 1 and self._segments[0].end_lsn <= cutoff:
            segment = self._segments.pop(0)
            retired += len(segment)
            self._archived_records += len(segment)
            for record in segment.records:
                self._archived_bytes += record.size_bytes()
                kind = type(record.payload)
                self._archived_type_counts[kind] = (
                    self._archived_type_counts.get(kind, 0) + 1
                )
            if self._archive_sink is not None:
                self._archive_sink(segment)
        if retired and self.tracer.enabled:
            self.tracer.event(
                "log.truncate", retired=retired, head_lsn=self.head_lsn
            )
        return retired

    @property
    def archived_records(self) -> int:
        """Records retired by truncation (still counted, no longer held)."""
        return self._archived_records

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def records_from(self, lsn: int, volatile: bool = True) -> Iterator[LogRecord]:
        """Stream records with LSN >= ``lsn``, in order, segment by
        segment — the O(segment)-memory read path recovery runs on.

        With ``volatile=False`` the stream stops at the stable boundary
        (what recovery will see).
        """
        limit = self._next_lsn - 1 if volatile else self._stable_lsn
        start = max(lsn, self.head_lsn)
        index = self._segment_index(start)
        if index is None:
            return
        for segment in self._segments[index:]:
            if segment.base_lsn > limit:
                return
            offset = max(0, start - segment.base_lsn)
            for record in segment.records[offset:]:
                if record.lsn > limit:
                    return
                yield record

    def stable_records_from(self, lsn: int = 0) -> Iterator[LogRecord]:
        """Stream the stable records with LSN >= ``lsn``."""
        return self.records_from(lsn, volatile=False)

    def entries(self, volatile: bool = True) -> list[LogRecord]:
        """All retained records; with ``volatile=False`` only the stable
        prefix.  Materializes a list — iterate :meth:`records_from` on
        hot paths instead."""
        return list(self.records_from(self.head_lsn, volatile))

    def stable_entries(self) -> list[LogRecord]:
        """The retained stable prefix, as a list (see :meth:`entries`)."""
        return self.entries(volatile=False)

    def entries_from(self, lsn: int, volatile: bool = True) -> Iterator[LogRecord]:
        """Alias of :meth:`records_from` (historical name)."""
        return self.records_from(lsn, volatile)

    def entry(self, lsn: int) -> LogRecord:
        """The record with exactly this LSN (must be retained)."""
        segment = self.segment_containing(lsn)
        return segment.records[lsn - segment.base_lsn]

    def stable_count_of(self, *payload_types: type) -> int:
        """Stable records whose payload is an instance of the given
        types, truncated segments included — the one durable-count
        primitive every method shares."""
        count = sum(
            n
            for kind, n in self._archived_type_counts.items()
            if issubclass(kind, payload_types)
        )
        return count + sum(
            1
            for record in self.stable_records_from(self.head_lsn)
            if isinstance(record.payload, payload_types)
        )

    def stable_bytes(self) -> int:
        """Bytes in the stable prefix (truncated segments included)."""
        return self._archived_bytes + sum(
            record.size_bytes() for record in self.stable_records_from(self.head_lsn)
        )

    def total_bytes(self) -> int:
        """Bytes in the whole log, volatile tail and truncated segments
        included."""
        return self._archived_bytes + sum(
            record.size_bytes() for record in self.records_from(self.head_lsn)
        )

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Drop the volatile tail; the stable prefix survives."""
        while self._segments and self._segments[-1].base_lsn > self._stable_lsn:
            if len(self._segments) == 1:
                self._segments[-1].records.clear()
                break
            self._segments.pop()
        tail = self._segments[-1]
        keep = max(0, self._stable_lsn - tail.base_lsn + 1)
        del tail.records[keep:]
        self._next_lsn = self._stable_lsn + 1
        while self._checkpoint_lsns and self._checkpoint_lsns[-1] > self._stable_lsn:
            self._checkpoint_lsns.pop()

    def __len__(self) -> int:
        """Records the log accounts for (truncated segments included)."""
        return self._archived_records + sum(len(s) for s in self._segments)

    def __repr__(self) -> str:
        return (
            f"LogManager(records={len(self)}, segments={len(self._segments)}, "
            f"stable_lsn={self._stable_lsn}, head_lsn={self.head_lsn})"
        )
