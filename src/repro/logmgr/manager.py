"""The log manager: the single LSN authority, segmented.

The manager is the *only* component that assigns LSNs — every record in
the system, whether a typed redo payload from a §6 method engine or an
abstract theory operation appended through :class:`repro.core.recovery.Log`,
goes through :meth:`LogManager.append`, so "LSNs increase monotonically
with each new operation" (§6.3) holds by construction, everywhere.

Storage is **segmented**: records live in fixed-size
:class:`LogSegment` runs rather than one unbounded list.  Each segment
knows its own stable boundary (how much of it has been forced), which is
what the cache manager's write-ahead check consults, and sealed segments
wholly behind a checkpoint can be retired by :meth:`truncate_until` —
bounded active memory instead of an ever-growing log.

The log has a *stable prefix* (forced to disk) and a *volatile tail*; a
crash truncates the tail.  :meth:`wal_check` implements the write-ahead
rule a cache manager must consult before flushing a page: the record
that produced a page's latest update must be stable before the page may
reach disk.

**Durable tier.**  By default the log is in-memory and ``flush()``
merely advances the stable watermark (a simulated disk boundary).  Give
the manager a :class:`~repro.logmgr.filelog.FileLogStore` and the same
API becomes real: ``append`` encodes each record to its binary frame
(:mod:`repro.logmgr.codec`) and stages it, ``flush`` writes and —
subject to **group commit** — ``fsync``\\ s, and the stable watermark
only advances at an actual ``fsync``.  With ``group_commit=N``, N force
requests share one ``fsync``; ``ensure_stable`` passes ``barrier=True``
because the write-ahead rule cannot wait for a batch to fill.  Sealed,
fully-synced segments drop their decoded records from memory and are
re-streamed from their files on demand, so long-log memory stays
O(segment); :meth:`LogManager.open` rebuilds a manager from the segment
files alone (cold start), applying the codec's torn-tail rule to
whatever a crash left behind.

**Concurrency contract.**  The manager is re-entrant: any number of
threads may append, force, and read concurrently.  Two locks carry the
contract — the *manager mutex* guards LSN assignment, segment mutation,
and every watermark, so "one LSN authority" survives concurrent
appenders; the *force lock* serializes the write+fsync path, so exactly
one force is in flight at a time while appends keep flowing (the
``fsync`` itself runs outside the manager mutex).  ``stable_lsn`` is
monotone under any interleaving — a force only ever advances it — and
:meth:`wait_stable` blocks a caller until the watermark covers an LSN,
which is the primitive the cross-session commit pipeline
(:mod:`repro.logmgr.pipeline`) wakes waiters with.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Any, Callable, Iterator

from repro.logmgr.codec import (
    PAYLOAD_CHECKPOINT,
    PAYLOAD_CLASSES,
    CodecError,
    encode_window,
    payload_tag,
)
from repro.logmgr.pageindex import (
    PageRedoIndex,
    encode_page_index,
    index_records,
)
from repro.logmgr.records import CheckpointRecord, LogRecord, Payload
from repro.obs.trace import NULL_TRACER, Tracer

DEFAULT_SEGMENT_SIZE = 1024


class WalViolation(RuntimeError):
    """A page flush was attempted before its log records were stable."""


class LogSegment:
    """One fixed-size run of consecutive records.

    ``base_lsn`` is the LSN of the first record; records are dense, so a
    segment covers ``[base_lsn, base_lsn + len(records))``.  The segment
    itself is dumb storage — stability is a property of the manager's
    watermark, exposed per segment via :meth:`LogManager.segment_stable_boundary`.

    A file-backed segment that is sealed and fully synced may be
    **evicted**: ``records`` becomes ``None`` and only the statistics
    needed for accounting (count, bytes, per-type counts) stay resident;
    reads re-stream the segment's file through the store.
    """

    __slots__ = ("base_lsn", "records", "_count", "_bytes", "_type_counts")

    def __init__(self, base_lsn: int):
        self.base_lsn = base_lsn
        self.records: list[LogRecord] | None = []
        self._count = 0
        self._bytes = 0
        self._type_counts: dict[type, int] = {}

    @property
    def end_lsn(self) -> int:
        """The last LSN held (``base_lsn - 1`` when empty)."""
        return self.base_lsn + len(self) - 1

    @property
    def evicted(self) -> bool:
        """True when decoded records were dropped (file-backed only)."""
        return self.records is None

    def evict(self) -> None:
        """Drop the decoded records, keeping count/byte/type statistics.

        Only legal for a segment whose every record is durable in a
        segment file — the manager enforces that before calling.
        """
        if self.records is None:
            return
        self._count = len(self.records)
        self._bytes = sum(record.size_bytes() for record in self.records)
        for record in self.records:
            kind = type(record.payload)
            self._type_counts[kind] = self._type_counts.get(kind, 0) + 1
        self.records = None

    @property
    def stat_bytes(self) -> int:
        """Byte accounting for an evicted segment (0 while resident)."""
        return self._bytes

    @property
    def type_counts(self) -> dict[type, int]:
        """Per-payload-type counts for an evicted segment."""
        return self._type_counts

    def __len__(self) -> int:
        return self._count if self.records is None else len(self.records)

    def __repr__(self) -> str:
        state = ", evicted" if self.records is None else ""
        return f"LogSegment(lsns=[{self.base_lsn}..{self.end_lsn}]{state})"


class LogManager:
    """An append-only segmented log with an explicit stable/volatile boundary."""

    def __init__(
        self,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        tracer: Tracer | None = None,
        store=None,
        group_commit: int = 1,
    ):
        if segment_size < 1:
            raise ValueError("segment_size must be at least 1")
        if group_commit < 1:
            raise ValueError("group_commit must be at least 1")
        self.segment_size = segment_size
        self.group_commit = group_commit
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._store = store
        # The manager mutex: LSN assignment, segment mutation, watermark
        # updates, checkpoint/truncation bookkeeping.  RLock because the
        # write path re-enters (ensure_stable -> flush, append -> seal).
        self._mutex = threading.RLock()
        # Waiters parked on a target LSN (commit pipeline, sync barriers)
        # are woken whenever the stable watermark advances.
        self._stable_cv = threading.Condition(self._mutex)
        # One force in flight at a time; appends proceed during the fsync.
        self._force_lock = threading.RLock()
        self._segments: list[LogSegment] = [LogSegment(0)]
        self._next_lsn = 0
        self._stable_lsn = -1
        # Durable-tier watermarks: written-but-unsynced bytes are still
        # volatile; forces between fsyncs accumulate for group commit.
        self._written_lsn = -1
        self._pending_forces = 0
        # Appended-but-not-yet-encoded records, as (segment base, record).
        # Encoding is deferred to the flush path, where a whole group-
        # commit window packs into one blob with one write — the append
        # hot path just assigns the LSN and takes the reference.
        self._pending: list[tuple[int, LogRecord]] = []
        # Segment files at or below this base LSN are sealed (sidecar
        # seal written) or will never be; only newer rotations get seals.
        self._seal_watermark = -1
        self._checkpoint_lsns: list[int] = []
        # Truncation bookkeeping: retired records stay countable even
        # after their segments leave memory.
        self._archived_records = 0
        self._archived_bytes = 0
        self._archived_type_counts: dict[type, int] = {}
        self._archive_sink: Callable[[LogSegment], None] | None = None
        self.forced_flushes = 0
        if store is not None and store.is_empty():
            store.begin_segment(0)

    @classmethod
    def open(
        cls,
        directory,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        tracer: Tracer | None = None,
        group_commit: int = 1,
        fsync: bool = True,
    ) -> "LogManager":
        """Cold-start: rebuild a manager from a segment directory alone.

        Every record in the files is, by definition, the stable prefix —
        nothing volatile survives a real crash — so ``stable_lsn`` lands
        on the last decodable record.  The codec's torn-tail rule is
        applied: a record failing its length/CRC check ends the log, the
        file is truncated at the tear, and any later segment files are
        deleted (they lie beyond a hole and are not part of history).
        An empty or missing directory yields a fresh durable manager.

        Non-tail segments are rebuilt straight from a statistics walk —
        one sidecar-seal CRC pass (or the per-frame walk when no valid
        seal exists) plus one byte per record — into already-evicted
        in-memory segments; only the tail segment's records are
        materialized.
        """
        from repro.logmgr.filelog import FileLogStore, file_stats

        store = FileLogStore.attach(directory, fsync=fsync)
        manager = cls(
            segment_size=segment_size,
            tracer=tracer,
            store=store,
            group_commit=group_commit,
        )
        # Archived (truncated) segments still count: warm managers keep
        # their byte/type accounting across truncation, so a cold start
        # must fold the .arch files back in for the two paths to agree.
        archived_checkpoints: list[int] = []
        for path in store.archived_paths():
            stats = file_stats(path)
            manager._archived_records += stats.count
            manager._archived_bytes += stats.bytes
            for tag, n in stats.tag_counts.items():
                kind = PAYLOAD_CLASSES[tag]
                manager._archived_type_counts[kind] = (
                    manager._archived_type_counts.get(kind, 0) + n
                )
            archived_checkpoints.extend(stats.checkpoint_lsns)
        bases = store.segment_base_lsns()
        if not bases:
            manager._checkpoint_lsns = archived_checkpoints
            return manager
        segments: list[LogSegment] = []
        checkpoints: list[int] = []
        expected = bases[0]
        for position, base in enumerate(bases):
            if base != expected:
                raise CodecError(
                    f"segment files not dense: expected base LSN {expected}, "
                    f"found {base}"
                )
            segment = LogSegment(base)
            if position == len(bases) - 1:
                records, tear_offset, tear_reason = store.load_segment(base)
                for index, record in enumerate(records):
                    if record.lsn != base + index:
                        raise CodecError(
                            f"segment {base} holds LSN {record.lsn} "
                            f"at position {index}"
                        )
                segment.records = records
                # Loaded records are lazy — spot checkpoints by wire tag
                # so the scan stays decode-free.
                checkpoints.extend(
                    record.lsn
                    for record in records
                    if record.payload_tag == PAYLOAD_CHECKPOINT
                )
                count = len(records)
            else:
                stats = store.segment_stats(base)
                tear_offset, tear_reason = stats.tear_offset, stats.tear_reason
                segment.records = None
                segment._count = stats.count
                segment._bytes = stats.bytes
                segment._type_counts = {
                    PAYLOAD_CLASSES[tag]: n for tag, n in stats.tag_counts.items()
                }
                checkpoints.extend(stats.checkpoint_lsns)
                count = stats.count
            segments.append(segment)
            if tear_offset is not None:
                store.truncate_segment_tail(base, tear_offset)
                dropped = store.drop_segments_after(base)
                if manager.tracer.enabled:
                    manager.tracer.event(
                        "log.torn_tail",
                        base_lsn=base,
                        offset=tear_offset,
                        reason=tear_reason,
                        dropped_segments=dropped,
                    )
                break
            expected = base + count
        # A tear can make an evicted segment the tail; the tail must be
        # resident (appends extend it), so load it now that the file is
        # truncated clean.
        tail = segments[-1]
        if tail.records is None:
            records, tear_offset, _reason = store.load_segment(tail.base_lsn)
            if tear_offset is not None:  # pragma: no cover - just truncated
                raise CodecError(
                    f"segment {tail.base_lsn} still torn after truncation"
                )
            tail.records = records
            tail._count = 0
            tail._bytes = 0
            tail._type_counts = {}
        manager._segments = segments
        manager._stable_lsn = segments[-1].end_lsn
        manager._written_lsn = manager._stable_lsn
        manager._next_lsn = manager._stable_lsn + 1
        manager._checkpoint_lsns = archived_checkpoints + checkpoints
        manager._seal_watermark = segments[-1].base_lsn - 1
        return manager

    @property
    def store(self):
        """The file-backed segment store, or None for an in-memory log."""
        return self._store

    # ------------------------------------------------------------------
    # Append / force
    # ------------------------------------------------------------------

    def append(self, payload: Payload, **labels: Any) -> LogRecord:
        """Append ``payload`` with the next LSN; returns the record.

        This is the one place in the whole system where an LSN is born.
        On a durable log the record joins the pending tail (volatile
        until a force encodes, writes, and fsyncs it); encoding itself
        is deferred to the flush path so a whole group-commit window
        packs into one blob hitting the file in one write.  The
        payload's *type*
        is still checked here — an undurable payload must fail at the
        append, not poison a later flush.  Thread-safe: concurrent
        appenders serialize on the manager mutex, so LSNs stay dense
        and monotone under any interleaving.
        """
        with self._mutex:
            tail = self._segments[-1]
            if len(tail) >= self.segment_size:
                tail = LogSegment(self._next_lsn)
                self._segments.append(tail)
                if self._store is not None:
                    self._store.begin_segment(self._next_lsn)
            record = LogRecord(lsn=self._next_lsn, payload=payload, labels=labels)
            if self._store is not None:
                payload_tag(payload)  # raises CodecError for undurable types
                self._pending.append((tail.base_lsn, record))
            tail.records.append(record)
            self._next_lsn += 1
            if isinstance(payload, CheckpointRecord):
                self._checkpoint_lsns.append(record.lsn)
        if self.tracer.enabled:
            self.tracer.event(
                "log.append", lsn=record.lsn, payload=type(payload).__name__
            )
        return record

    def flush(self, up_to_lsn: int | None = None, barrier: bool = False) -> None:
        """Force the log to disk through ``up_to_lsn`` (default: all).

        In-memory logs just advance the watermark.  Durable logs write
        staged frames immediately but count the force toward the group
        commit: only every ``group_commit``-th force (or a
        ``barrier=True`` force, used by the write-ahead rule) pays the
        fsync and advances the stable watermark — N commits, one fsync.

        Thread-safe: concurrent forces serialize on the force lock
        (exactly one write+fsync in flight), the watermark advance is
        monotone (a slower force can never drag ``stable_lsn``
        backwards), and the ``fsync`` itself runs outside the manager
        mutex so appends keep flowing while it waits on the disk.
        """
        with self._mutex:
            target = (
                self._next_lsn - 1
                if up_to_lsn is None
                else min(up_to_lsn, self._next_lsn - 1)
            )
            if self._store is None:
                if target > self._stable_lsn:
                    if self.tracer.enabled:
                        self.tracer.event(
                            "log.force", from_lsn=self._stable_lsn, stable_lsn=target
                        )
                    self._stable_lsn = target
                    self.forced_flushes += 1
                    self._stable_cv.notify_all()
                return
        with self._force_lock:
            # Cut the covered prefix of the pending tail under the
            # mutex, then window-encode it with no lock but the force
            # lock held — appenders keep appending while the CPU packs
            # bytes.  One packed blob per (window × segment) run.
            with self._mutex:
                batch: list[tuple[int, LogRecord]] = []
                if target > self._written_lsn and self._pending:
                    pending = self._pending
                    cut = 0
                    while cut < len(pending) and pending[cut][1].lsn <= target:
                        cut += 1
                    if cut:
                        batch = pending[:cut]
                        del pending[:cut]
            staged = 0
            try:
                while staged < len(batch):
                    base = batch[staged][0]
                    end = staged
                    while end < len(batch) and batch[end][0] == base:
                        end += 1
                    window = [entry[1] for entry in batch[staged:end]]
                    self._store.stage_many(
                        window[-1].lsn, base, encode_window(window), len(window)
                    )
                    staged = end
            except BaseException:
                # Nothing staged past ``staged``: put the unstaged
                # suffix back so no appended record falls out of the
                # durable path (a retry will see it again).
                with self._mutex:
                    self._pending[:0] = batch[staged:]
                raise
            with self._mutex:
                if target > self._written_lsn:
                    self._store.write_up_to(target)
                    self._written_lsn = target
                    self._seal_filled_locked()
                if self._written_lsn <= self._stable_lsn:
                    return
                self._pending_forces += 1
                if not (barrier or self._pending_forces >= self.group_commit):
                    return
                coalesced = self._pending_forces
                sync_target = self._written_lsn
                from_lsn = self._stable_lsn
            # The durability point: no manager mutex held, so appenders
            # stage new frames while the disk does its work.  The force
            # lock keeps any second flusher out until we finish.
            self._store.sync()
            with self._mutex:
                self._pending_forces = 0
                if self.tracer.enabled:
                    self.tracer.event(
                        "log.force", from_lsn=from_lsn, stable_lsn=sync_target
                    )
                    self.tracer.event(
                        "log.fsync",
                        stable_lsn=sync_target,
                        coalesced=coalesced,
                        barrier=barrier,
                    )
                if sync_target > self._stable_lsn:
                    self._stable_lsn = sync_target
                self.forced_flushes += 1
                self._evict_synced()
                self._stable_cv.notify_all()

    def wait_stable(self, lsn: int, timeout: float | None = None) -> bool:
        """Block until the stable watermark covers ``lsn``.

        The waiter half of cross-session group commit: a session parks
        here after handing its force to the committer, and is woken when
        some force (anyone's) advances ``stable_lsn`` past its records.
        Returns False on timeout — the caller decides whether that is a
        protocol error or a retry.  Never wakes early: the predicate is
        re-checked under the manager mutex after every notification.
        """
        with self._stable_cv:
            return self._stable_cv.wait_for(
                lambda: self._stable_lsn >= lsn, timeout=timeout
            )

    def _seal_filled_locked(self) -> None:
        """Seal every segment file that has rotated and whose records
        are all written: a 20-byte sidecar carrying the segment-level
        CRC, after which the happy-path reader verifies the whole file
        with one checksum instead of one per frame.  The page-index
        sidecar is written in the same breath — the records are still
        resident here (eviction runs after the sync), so indexing which
        frames touch which page costs zero reads of the file."""
        for segment in self._segments[:-1]:
            if segment.end_lsn > self._written_lsn:
                break
            if segment.base_lsn <= self._seal_watermark:
                continue
            self._store.seal_segment(segment.base_lsn)
            records = segment.records
            if records is not None:
                seg_index = index_records(segment.base_lsn, records)
            else:  # evicted before sealing (stable covered it early)
                seg_index = self._store.build_page_index(segment.base_lsn)
            self._store.write_page_index(
                segment.base_lsn, encode_page_index(seg_index)
            )
            self._seal_watermark = segment.base_lsn

    def _evict_synced(self) -> None:
        """Drop decoded records of sealed, fully-stable segments — their
        bytes are in synced files, so reads can re-stream them."""
        for segment in self._segments[:-1]:
            if segment.records is not None and segment.end_lsn <= self._stable_lsn:
                segment.evict()

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def stable_lsn(self) -> int:
        """The highest LSN guaranteed on disk (-1 if none)."""
        return self._stable_lsn

    @property
    def head_lsn(self) -> int:
        """The lowest LSN still held in memory (older ones were truncated)."""
        return self._segments[0].base_lsn

    def is_stable(self, lsn: int) -> bool:
        """Has the record at ``lsn`` been forced to disk?"""
        return lsn <= self._stable_lsn

    # ------------------------------------------------------------------
    # Segments and the write-ahead rule
    # ------------------------------------------------------------------

    def segments(self) -> list[LogSegment]:
        """The retained segments, oldest first (a read-only view)."""
        with self._mutex:
            return list(self._segments)

    def segment_containing(self, lsn: int) -> LogSegment:
        """The retained segment holding ``lsn`` (KeyError if truncated or
        not yet appended)."""
        index = self._segment_index(lsn)
        if index is None:
            raise KeyError(f"LSN {lsn} is not in any retained segment")
        return self._segments[index]

    def _segment_index(self, lsn: int) -> int | None:
        with self._mutex:
            if lsn < self.head_lsn or lsn >= self._next_lsn:
                return None
            bases = [segment.base_lsn for segment in self._segments]
            return bisect_right(bases, lsn) - 1

    def segment_stable_boundary(self, lsn: int) -> int:
        """The highest stable LSN within the segment holding ``lsn``.

        Returns the segment's ``base_lsn - 1`` when none of it is stable.
        LSNs older than the retained head were truncated, which is only
        legal once stable, so they report themselves.  This per-segment
        boundary is what :meth:`repro.cache.BufferPool.flush_page`
        consults for the write-ahead rule.
        """
        with self._mutex:
            if lsn < self.head_lsn:
                return lsn
            if lsn >= self._next_lsn:
                # Beyond the tail: nothing there can ever be stable yet.
                return self._stable_lsn
            segment = self.segment_containing(lsn)
            return min(segment.end_lsn, self._stable_lsn)

    def wal_check(self, page_lsn: int) -> None:
        """Raise :class:`WalViolation` unless every record up to
        ``page_lsn`` is stable — call before flushing a page tagged with
        that LSN."""
        if self.segment_stable_boundary(page_lsn) < page_lsn:
            raise WalViolation(
                f"page tagged with LSN {page_lsn} but log is stable only "
                f"through {self.stable_lsn}"
            )

    def ensure_stable(self, lsn: int) -> None:
        """The install gate: make every record through ``lsn`` stable.

        This is the write-ahead rule phrased as the §5 install
        operation's side condition — a page node tagged through ``lsn``
        may install only once the log covers it.  Like real systems, an
        unstable boundary *forces* the log rather than failing (that is
        what "write-ahead" means); the final :meth:`wal_check` then
        raises only if even a forced flush could not cover the LSN (a
        genuinely torn protocol, e.g. a page tagged with a never-appended
        LSN).  The check consults the per-segment stable boundary, so it
        stays cheap no matter how long the log grows.  On a durable log
        this force is a **barrier**: it cannot wait for a group-commit
        batch to fill, because the page is about to hit disk.
        """
        if self.segment_stable_boundary(lsn) < lsn:
            self.flush(up_to_lsn=lsn, barrier=True)
        self.wal_check(lsn)

    # ------------------------------------------------------------------
    # Checkpoints and truncation
    # ------------------------------------------------------------------

    @property
    def last_stable_checkpoint_lsn(self) -> int:
        """The LSN of the newest *stable* checkpoint record (-1 if none).

        Recovery starts its analysis scan here: everything a crash
        survivor needs lies in the checkpoint suffix.
        """
        with self._mutex:
            index = bisect_right(self._checkpoint_lsns, self._stable_lsn)
            return self._checkpoint_lsns[index - 1] if index else -1

    def set_archive_sink(self, sink: Callable[[LogSegment], None] | None) -> None:
        """Install a callable receiving each truncated segment (an
        archive device for media recovery); None discards them."""
        self._archive_sink = sink

    def truncate_until(self, lsn: int) -> int:
        """Retire sealed, fully-stable segments wholly below ``lsn``.

        This is checkpoint-based truncation: once a checkpoint guarantees
        recovery never reads below ``lsn``, the segments under it can
        leave memory.  Only whole segments go — the log stays dense from
        :attr:`head_lsn` — and only stable ones: a volatile record can
        still be needed verbatim by the next flush.  Retired records stay
        visible to the byte/count accounting (and flow to the archive
        sink if one is installed, preserving media recovery).  On a
        durable log the segment's file is renamed to the archive suffix
        rather than deleted — truncation and archiving share one binary
        format.  Returns the number of records retired.
        """
        with self._mutex:
            return self._truncate_until_locked(lsn)

    def _truncate_until_locked(self, lsn: int) -> int:
        retired = 0
        cutoff = min(lsn - 1, self._stable_lsn)
        while len(self._segments) > 1 and self._segments[0].end_lsn <= cutoff:
            segment = self._segments.pop(0)
            retired += len(segment)
            self._archived_records += len(segment)
            if segment.records is None:
                self._archived_bytes += segment.stat_bytes
                for kind, n in segment.type_counts.items():
                    self._archived_type_counts[kind] = (
                        self._archived_type_counts.get(kind, 0) + n
                    )
                if self._archive_sink is not None:
                    materialized = LogSegment(segment.base_lsn)
                    materialized.records = list(
                        self._store.scan_segment(segment.base_lsn)
                    )
                    self._archive_sink(materialized)
            else:
                for record in segment.records:
                    self._archived_bytes += record.size_bytes()
                    kind = type(record.payload)
                    self._archived_type_counts[kind] = (
                        self._archived_type_counts.get(kind, 0) + 1
                    )
                if self._archive_sink is not None:
                    self._archive_sink(segment)
            if self._store is not None:
                self._store.archive_segment(segment.base_lsn)
        if retired and self.tracer.enabled:
            self.tracer.event(
                "log.truncate", retired=retired, head_lsn=self.head_lsn
            )
        return retired

    @property
    def archived_records(self) -> int:
        """Records retired by truncation (still counted, no longer held)."""
        return self._archived_records

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _segment_records(self, segment: LogSegment, offset: int) -> Iterator[LogRecord]:
        """Stream one segment's records from index ``offset`` — straight
        from memory when resident, re-decoded from the segment file in
        O(segment) memory when evicted."""
        # Snapshot the records reference: a concurrent force may evict
        # the segment (records -> None) between the check and the slice.
        records = segment.records
        if records is not None:
            yield from records[offset:]
        else:
            yield from self._store.scan_segment(
                segment.base_lsn, start_lsn=segment.base_lsn + offset
            )

    def records_from(self, lsn: int, volatile: bool = True) -> Iterator[LogRecord]:
        """Stream records with LSN >= ``lsn``, in order, segment by
        segment — the O(segment)-memory read path recovery runs on.

        With ``volatile=False`` the stream stops at the stable boundary
        (what recovery will see).
        """
        limit = self._next_lsn - 1 if volatile else self._stable_lsn
        start = max(lsn, self.head_lsn)
        index = self._segment_index(start)
        if index is None:
            return
        for segment in self._segments[index:]:
            if segment.base_lsn > limit:
                return
            offset = max(0, start - segment.base_lsn)
            # An evicted segment's extent is immutable, so when it lies
            # entirely at or below the limit the per-record boundary
            # check is dead weight — stream it straight through.  (A
            # resident segment's list can still grow concurrently, so it
            # always takes the checked loop.)
            if segment.records is None and segment.end_lsn <= limit:
                yield from self._segment_records(segment, offset)
                continue
            for record in self._segment_records(segment, offset):
                if record.lsn > limit:
                    return
                yield record

    def stable_records_from(self, lsn: int = 0) -> Iterator[LogRecord]:
        """Stream the stable records with LSN >= ``lsn``."""
        return self.records_from(lsn, volatile=False)

    def entries(self, volatile: bool = True) -> list[LogRecord]:
        """All retained records; with ``volatile=False`` only the stable
        prefix.  Materializes a list — iterate :meth:`records_from` on
        hot paths instead."""
        return list(self.records_from(self.head_lsn, volatile))

    def stable_entries(self) -> list[LogRecord]:
        """The retained stable prefix, as a list (see :meth:`entries`)."""
        return self.entries(volatile=False)

    def entries_from(self, lsn: int, volatile: bool = True) -> Iterator[LogRecord]:
        """Alias of :meth:`records_from` (historical name)."""
        return self.records_from(lsn, volatile)

    def entry(self, lsn: int) -> LogRecord:
        """The record with exactly this LSN (must be retained)."""
        segment = self.segment_containing(lsn)
        records = segment.records
        if records is not None:
            return records[lsn - segment.base_lsn]
        for record in self._store.scan_segment(segment.base_lsn, start_lsn=lsn):
            return record
        raise KeyError(f"LSN {lsn} missing from segment file {segment.base_lsn}")

    def page_index(self, start_lsn: int = 0) -> PageRedoIndex:
        """The per-page redo index over the stable records at or above
        ``start_lsn``: every page's chain of ``(segment, offset, lsn)``
        triples plus the multi-page replay components.

        Sealed segments answer from their ``.pages`` sidecar when one is
        present and fresh; unsealed tails, resident segments, and
        pre-sidecar directories are indexed by one structural scan each
        — so the index always exists, sidecars just make it cheap.  This
        is what lazy recovery runs its analysis on: the cost is
        O(sidecar bytes + tail segment), not O(log suffix).
        """
        index = PageRedoIndex(start_lsn=max(0, start_lsn))
        with self._mutex:
            segments = list(self._segments)
            stable = self._stable_lsn
        for segment in segments:
            if segment.base_lsn > stable:
                break
            if len(segment) == 0 or segment.end_lsn < index.start_lsn:
                continue
            records = segment.records
            if records is None:
                seg_index = self._store.load_page_index(segment.base_lsn)
                if seg_index is not None:
                    index.add_segment(seg_index, from_sidecar=True)
                    continue
                index.add_segment(self._store.build_page_index(segment.base_lsn))
                continue
            if segment.end_lsn > stable:
                records = records[: stable - segment.base_lsn + 1]
            index.add_segment(index_records(segment.base_lsn, records))
        return index

    def fetch_chain(self, entries) -> list[LogRecord]:
        """Materialize the records behind page-index chain entries
        (``(segment_base, offset, lsn)`` triples, LSN ascending).

        Resident segments answer from memory in O(1) per record (LSN
        density makes ``records[lsn - base]`` exact); evicted segments
        are mapped once per contiguous run and only the listed frames
        are read — the zero-copy per-page read path that makes a
        single-page replay independent of log volume.
        """
        result: list[LogRecord] = []
        position = 0
        count = len(entries)
        while position < count:
            base = entries[position][0]
            group_end = position
            while group_end < count and entries[group_end][0] == base:
                group_end += 1
            segment = self.segment_containing(base)
            records = segment.records
            if records is not None:
                for _base, _offset, lsn in entries[position:group_end]:
                    result.append(records[lsn - base])
            else:
                result.extend(
                    self._store.read_records_at(
                        base,
                        [(offset, lsn) for _base, offset, lsn in entries[position:group_end]],
                    )
                )
            position = group_end
        return result

    def stable_count_of(self, *payload_types: type) -> int:
        """Stable records whose payload is an instance of the given
        types, truncated segments included — the one durable-count
        primitive every method shares.  Evicted segments answer from
        their cached per-type counts (they are fully stable by
        construction), so this never touches a file."""
        with self._mutex:
            return self._stable_count_of_locked(*payload_types)

    def _stable_count_of_locked(self, *payload_types: type) -> int:
        count = sum(
            n
            for kind, n in self._archived_type_counts.items()
            if issubclass(kind, payload_types)
        )
        for segment in self._segments:
            if segment.base_lsn > self._stable_lsn:
                break
            if segment.records is None:
                count += sum(
                    n
                    for kind, n in segment.type_counts.items()
                    if issubclass(kind, payload_types)
                )
            else:
                for record in segment.records:
                    if record.lsn > self._stable_lsn:
                        break
                    if isinstance(record.payload, payload_types):
                        count += 1
        return count

    def stable_bytes(self) -> int:
        """Bytes in the stable prefix (truncated segments included)."""
        with self._mutex:
            return self._stable_bytes_locked()

    def _stable_bytes_locked(self) -> int:
        total = self._archived_bytes
        for segment in self._segments:
            if segment.base_lsn > self._stable_lsn:
                break
            if segment.records is None:
                total += segment.stat_bytes
            else:
                for record in segment.records:
                    if record.lsn > self._stable_lsn:
                        break
                    total += record.size_bytes()
        return total

    def total_bytes(self) -> int:
        """Bytes in the whole log, volatile tail and truncated segments
        included."""
        with self._mutex:
            total = self._archived_bytes
            for segment in self._segments:
                if segment.records is None:
                    total += segment.stat_bytes
                else:
                    total += sum(record.size_bytes() for record in segment.records)
            return total

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Drop the volatile tail; the stable prefix survives.

        On a durable log this also discards staged frames and truncates
        each segment file back to its last-synced length — exactly what
        the kernel does to the page cache when the process dies.
        Quiesces the write path: the force lock is taken first, so an
        in-flight fsync completes (or its batch dies) before the tail is
        dropped.
        """
        with self._force_lock, self._mutex:
            self._crash_locked()

    def _crash_locked(self) -> None:
        while self._segments and self._segments[-1].base_lsn > self._stable_lsn:
            if len(self._segments) == 1:
                self._segments[-1].records.clear()
                break
            self._segments.pop()
        tail = self._segments[-1]
        if tail.records is not None:
            keep = max(0, self._stable_lsn - tail.base_lsn + 1)
            del tail.records[keep:]
        self._next_lsn = self._stable_lsn + 1
        while self._checkpoint_lsns and self._checkpoint_lsns[-1] > self._stable_lsn:
            self._checkpoint_lsns.pop()
        if self._store is not None:
            self._pending.clear()
            self._store.crash()
            self._written_lsn = self._stable_lsn
            self._pending_forces = 0
            # The crash deletes files with no synced records; if the
            # tail segment's file was one of them, start it afresh so
            # the recovered incarnation has somewhere to stage appends.
            tail = self._segments[-1]
            if tail.base_lsn not in self._store.segment_base_lsns():
                self._store.begin_segment(tail.base_lsn)

    def __len__(self) -> int:
        """Records the log accounts for (truncated segments included)."""
        with self._mutex:
            return self._archived_records + sum(len(s) for s in self._segments)

    def __repr__(self) -> str:
        return (
            f"LogManager(records={len(self)}, segments={len(self._segments)}, "
            f"stable_lsn={self._stable_lsn}, head_lsn={self.head_lsn})"
        )
