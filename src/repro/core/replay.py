"""Replaying uninstalled operations — Theorem 3 (§3.4).

**Potential Recoverability Theorem.**  If S is a state explained by a
prefix σ of the installation graph, then replaying the operations outside
σ against S in any order consistent with the conflict graph yields the
final state determined by the conflict graph.

:func:`replay` performs such a replay; :func:`is_potentially_recoverable`
implements the definition at the top of §3 directly (does *some* subset
replayed in conflict order reach the final state?), which the tests use as
an independent oracle against Theorem 3 — including for the paper's
Scenario 1, where no subset works.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable, Sequence

from repro.core.conflict import ConflictGraph
from repro.core.installation import InstallationGraph
from repro.core.model import Operation, State


def replay_order(
    conflict: ConflictGraph, uninstalled: Iterable[Operation]
) -> list[Operation]:
    """The uninstalled operations in (one) conflict-graph order."""
    return conflict.linear_extension(uninstalled)


def replay(
    conflict: ConflictGraph,
    uninstalled: Iterable[Operation],
    state: State,
    order: Sequence[Operation] | None = None,
) -> State:
    """Apply ``uninstalled`` to ``state`` in conflict-graph order.

    ``order`` may supply a specific linear extension of the uninstalled
    set; it is validated against the conflict order.  Returns the replayed
    state (a copy; ``state`` is unmodified).
    """
    members = set(uninstalled)
    if order is None:
        sequence = replay_order(conflict, members)
    else:
        sequence = list(order)
        if set(sequence) != members or len(sequence) != len(members):
            raise ValueError("replay order must enumerate the uninstalled set exactly")
        position = {op.name: i for i, op in enumerate(sequence)}
        for a in sequence:
            for b in sequence:
                if conflict.ordered_before(a, b) and position[a.name] > position[b.name]:
                    raise ValueError(
                        f"replay order violates conflict order: {a.name} before {b.name}"
                    )
    result = state.copy()
    for operation in sequence:
        result = operation.apply(result)
    return result


def recovers(
    conflict: ConflictGraph,
    uninstalled: Iterable[Operation],
    state: State,
    initial: State,
) -> bool:
    """Does replaying ``uninstalled`` from ``state`` reach the final state?"""
    final = conflict.final_state(initial)
    replayed = replay(conflict, uninstalled, state)
    variables = set()
    for operation in conflict.operations:
        variables |= operation.variables()
    return replayed.agrees_with(final, variables)


def is_potentially_recoverable(
    conflict: ConflictGraph,
    state: State,
    initial: State,
) -> bool:
    """§3 definition, by exhaustive search over replay subsets.

    True iff *some* subset of the conflict graph's operations, replayed
    from ``state`` in conflict-graph order, yields the final state.
    Exponential in the number of operations — this is the independent
    oracle for small examples, not the production path (Theorem 3 plus
    :func:`repro.core.explain.is_explainable` is).
    """
    operations = list(conflict.operations)
    subsets = chain.from_iterable(
        combinations(operations, size) for size in range(len(operations) + 1)
    )
    return any(
        recovers(conflict, subset, state, initial) for subset in subsets
    )


def certify_theorem3(
    installation: InstallationGraph,
    prefix: Iterable[Operation],
    state: State,
    initial: State,
    try_all_orders: bool = False,
    order_limit: int = 24,
) -> bool:
    """Check Theorem 3's conclusion for one (prefix, state) pair.

    Requires ``prefix`` to explain ``state``.  Replays the complement in
    conflict order and compares with the final state; with
    ``try_all_orders`` every conflict-consistent order of the complement
    (up to ``order_limit``) is tried, matching the theorem's "any order"
    wording.
    """
    from repro.core.explain import explains
    from repro.graphs.algorithms import all_topological_sorts, restrict_order

    members = set(prefix)
    if not explains(installation, members, state, initial):
        raise ValueError("certify_theorem3 requires an explaining prefix")
    conflict = installation.conflict
    uninstalled = [op for op in conflict.operations if op not in members]
    if not try_all_orders:
        return recovers(conflict, uninstalled, state, initial)
    order_dag = restrict_order(conflict.dag, [op.name for op in uninstalled])
    final = conflict.final_state(initial)
    variables = set()
    for operation in conflict.operations:
        variables |= operation.variables()
    for names in all_topological_sorts(order_dag, limit=order_limit):
        sequence = [conflict.operation(name) for name in names]
        replayed = replay(conflict, uninstalled, state, order=sequence)
        if not replayed.agrees_with(final, variables):
            return False
    return True
