"""Partial-order logs (§4.1).

The paper defines a log for a conflict graph as *any* DAG whose nodes
are the graph's operations and whose order is consistent with conflict
order — "it is not necessary to have a totally ordered log reflecting
the exact execution order; only conflicting logged operations need to be
ordered" (a consequence of Lemma 1).

:class:`PartialOrderLog` is that object, and :func:`recover_partial`
runs the Figure 6 procedure over it: at each step the *minimal
unrecovered* record is not unique, so a tie-break policy chooses among
the minimal candidates.  The §4.1 claim, which the tests verify, is that
the recovered state is independent of the policy — any linearization the
DAG admits recovers the same state.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.conflict import ConflictGraph
from repro.core.model import Operation, State
from repro.core.recovery import (
    AnalyzeFn,
    RecoveryOutcome,
    RedoDecision,
    RedoTest,
    always_redo,
    analysis_once,
)
from repro.graphs import Dag

TieBreak = Callable[[list[Operation]], Operation]


def first_by_name(candidates: list[Operation]) -> Operation:
    """Deterministic default tie-break: lexicographically least name."""
    return min(candidates, key=lambda op: op.name)


class PartialOrderLog:
    """A DAG of logged operations, ordered only by conflict (plus any
    extra edges the logger chose to impose)."""

    def __init__(self, conflict: ConflictGraph, extra_edges: Iterable[tuple] = ()):
        self.conflict = conflict
        self.dag = Dag()
        for operation in conflict.operations:
            self.dag.add_node(operation.name)
        for source, target, labels in conflict.dag.edges():
            self.dag.add_edge(source, target, labels=labels, check_acyclic=False)
        for source, target in extra_edges:
            self.dag.add_edge(source.name, target.name)

    def operations(self) -> list[Operation]:
        """All logged operations (unordered set semantics; list for use)."""
        return list(self.conflict.operations)

    def minimal_unrecovered(self, unrecovered: set[Operation]) -> list[Operation]:
        """The records recovery may legally consider next."""
        names = {op.name for op in unrecovered}
        return [
            self.conflict.operation(name)
            for name in self.dag.minimal_nodes(names)
        ]

    def is_consistent(self) -> bool:
        """§4.1's condition: conflict order embeds in log order."""
        return all(
            self.dag.has_path(a.name, b.name)
            for a, b, _ in self.conflict.edges()
        )

    def __repr__(self) -> str:
        return f"PartialOrderLog(ops={len(self.conflict)}, edges={self.dag.edge_count()})"


def recover_partial(
    state: State,
    log: PartialOrderLog,
    checkpoint: Iterable[Operation] = (),
    redo: RedoTest = always_redo,
    analyze: AnalyzeFn | None = None,
    tie_break: TieBreak = first_by_name,
) -> RecoveryOutcome:
    """The Figure 6 procedure over a partial-order log.

    Identical to :func:`repro.core.recovery.recover` except that "the
    minimal operation in unrecovered" is chosen by ``tie_break`` among
    the DAG-minimal candidates, since a partial order has several.
    """
    if analyze is None:
        analyze = analysis_once(lambda s, l, u: None)

    current = state.copy()
    logged = frozenset(log.operations())
    checkpoint_set = frozenset(checkpoint)
    remaining = {op for op in log.operations() if op not in checkpoint_set}
    analysis: Any = None
    decisions: list[RedoDecision] = []
    redo_set: set[Operation] = set()

    while remaining:
        candidates = log.minimal_unrecovered(remaining)
        operation = tie_break(candidates)
        if operation not in remaining:
            raise ValueError("tie_break returned a non-candidate operation")
        analysis = analyze(current, log, set(remaining), analysis)
        if redo(operation, current, log, analysis):
            current = operation.apply(current)
            redo_set.add(operation)
            decisions.append(RedoDecision(operation, True, analysis))
        else:
            decisions.append(RedoDecision(operation, False, analysis))
        remaining.discard(operation)

    return RecoveryOutcome(
        state=current,
        redo_set=redo_set,
        decisions=decisions,
        checkpoint=checkpoint_set,
        logged=logged,
    )
