"""The system model of §2.1: variables, values, states, and operations.

A *state* maps every variable to a value.  An *operation* is a function
with a fixed read set and a fixed write set: applied to a state, it reads
the values of its read-set variables and produces new values for its
write-set variables.  Operations are deterministic — replaying an
operation against the same read values writes the same values — which is
the assumption that makes redo recovery meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.expr import Expr, Value


class State:
    """A total function from variables to values, with an implicit default.

    The paper's states are total functions.  We represent one as a dict of
    explicit bindings over a default value (0 unless otherwise chosen),
    which matches the examples ("x and y, both initially 0") and lets
    states over large variable universes stay small.

    States are mutable via :meth:`set` but all model-level code treats them
    as values and uses :meth:`apply`/:meth:`updated`, which copy.
    """

    __slots__ = ("_values", "default")

    def __init__(self, values: Mapping[str, Value] | None = None, default: Value = 0):
        self._values: dict[str, Value] = dict(values or {})
        self.default = default

    def __getitem__(self, variable: str) -> Value:
        return self._values.get(variable, self.default)

    def get(self, variable: str) -> Value:
        """Alias for ``state[variable]``."""
        return self[variable]

    def set(self, variable: str, value: Value) -> None:
        """Destructively bind ``variable`` (storage layers use this)."""
        self._values[variable] = value

    def updated(self, writes: Mapping[str, Value]) -> "State":
        """A copy of this state with ``writes`` applied."""
        new_values = dict(self._values)
        new_values.update(writes)
        return State(new_values, default=self.default)

    def copy(self) -> "State":
        """An independent copy of this state."""
        return State(self._values, default=self.default)

    def bound_variables(self) -> set[str]:
        """Variables with explicit (non-default) bindings."""
        return set(self._values)

    def restrict(self, variables: Iterable[str]) -> dict[str, Value]:
        """The sub-assignment on ``variables`` as a plain dict."""
        return {variable: self[variable] for variable in variables}

    def agrees_with(self, other: "State", variables: Iterable[str]) -> bool:
        """True iff this state and ``other`` coincide on ``variables``."""
        return all(self[variable] == other[variable] for variable in variables)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        variables = self.bound_variables() | other.bound_variables()
        return self.default == other.default and self.agrees_with(other, variables)

    def __hash__(self):  # pragma: no cover - states are not meant to be keys
        raise TypeError("State is unhashable; compare with == or agrees_with()")

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._values.items()))
        return f"State({inner}; default={self.default!r})"


@dataclass(frozen=True)
class Operation:
    """A logged operation: fixed read/write sets plus a deterministic body.

    ``compute`` maps a dict of read-set values to a dict of write-set
    values.  Most operations are built from expressions with
    :meth:`from_assignments` (or the helpers in :mod:`repro.core.expr`),
    which also derives the read set; raw callables are accepted for bodies
    outside the expression language.

    Operations are identified by ``name``: the paper assumes the operations
    labeling a graph are distinct, and we inherit that by hashing and
    comparing on the name alone.  Two operations with equal names are the
    same operation.
    """

    name: str
    read_set: frozenset[str]
    write_set: frozenset[str]
    compute: Callable[[Mapping[str, Value]], Mapping[str, Value]] = field(compare=False)
    assignments: tuple[tuple[str, Expr], ...] = field(default=(), compare=False)

    def __post_init__(self):
        if not self.write_set:
            raise ValueError(f"operation {self.name!r} writes nothing")

    @staticmethod
    def from_assignments(name: str, assignments: Mapping[str, Expr]) -> "Operation":
        """Build an operation from simultaneous assignments ``var <- expr``.

        All right-hand sides are evaluated against the *pre* state, matching
        the paper's atomic read-then-write semantics: in
        ``<x <- x + 1; y <- y + 1>`` both increments see the old values.
        """
        items = tuple(sorted(assignments.items()))
        read_set = frozenset().union(*(expr.variables() for _, expr in items)) if items else frozenset()
        write_set = frozenset(var for var, _ in items)

        def compute(reads: Mapping[str, Value]) -> dict[str, Value]:
            return {var: expr.evaluate(reads) for var, expr in items}

        return Operation(
            name=name,
            read_set=read_set,
            write_set=write_set,
            compute=compute,
            assignments=items,
        )

    def variables(self) -> frozenset[str]:
        """All variables this operation accesses (reads or writes)."""
        return self.read_set | self.write_set

    def reads(self, variable: str) -> bool:
        """Is ``variable`` in the read set?"""
        return variable in self.read_set

    def writes(self, variable: str) -> bool:
        """Is ``variable`` in the write set?"""
        return variable in self.write_set

    def accesses(self, variable: str) -> bool:
        """Is ``variable`` read or written by this operation?"""
        return variable in self.read_set or variable in self.write_set

    def writes_blindly(self, variable: str) -> bool:
        """True iff this operation writes ``variable`` without reading it."""
        return variable in self.write_set and variable not in self.read_set

    def evaluate(self, state: State) -> dict[str, Value]:
        """The writes this operation performs against ``state``."""
        written = dict(self.compute(state.restrict(self.read_set)))
        if set(written) != set(self.write_set):
            raise ValueError(
                f"operation {self.name!r} declared write set {sorted(self.write_set)} "
                f"but wrote {sorted(written)}"
            )
        return written

    def apply(self, state: State) -> State:
        """The state resulting from performing this operation (a copy)."""
        return state.updated(self.evaluate(state))

    def __str__(self) -> str:
        if self.assignments:
            body = "; ".join(f"{var} <- {expr}" for var, expr in self.assignments)
        else:
            body = f"reads {sorted(self.read_set)}, writes {sorted(self.write_set)}"
        return f"{self.name}: {body}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)


def state_sequence(operations: Sequence[Operation], initial: State) -> list[State]:
    """The state sequence ``S0 S1 ... Sk`` generated by an operation sequence.

    ``S0`` is ``initial`` and each ``Si`` is the result of applying ``Oi``
    to ``S(i-1)`` (§2.1).
    """
    states = [initial.copy()]
    for operation in operations:
        states.append(operation.apply(states[-1]))
    return states


def run_sequence(operations: Sequence[Operation], initial: State) -> State:
    """The final state generated by the sequence (last element of the above)."""
    state = initial.copy()
    for operation in operations:
        state = operation.apply(state)
    return state


def check_distinct_names(operations: Iterable[Operation]) -> None:
    """Raise ValueError if two distinct operations share a name.

    The theory assumes graph nodes are labeled with distinct operations;
    graph constructors call this so violations fail fast.
    """
    seen: dict[str, Operation] = {}
    for operation in operations:
        prior = seen.get(operation.name)
        if prior is not None and prior is not operation:
            raise ValueError(f"duplicate operation name {operation.name!r}")
        seen[operation.name] = operation
