"""Partition-aware redo at the theory level (§2.2 + Theorem 3).

Two operations conflict only if they access a common variable (§2.2), so
the connected components of the "shares a variable" relation partition
the unrecovered suffix into sets with *no conflict edges between them*.
Replaying the partitions independently — each in log order — is then a
schedule whose projection onto every conflict edge matches the log:

- within a partition, log order is preserved by construction;
- across partitions there are no edges to violate.

The interleaving is therefore conflict-order consistent with the log,
and Theorem 3 (potential recoverability) promises the same final state
as the sequential left-to-right scan of Figure 6.  Because write sets
are confined to their component's variables, the per-partition results
are disjoint sub-assignments and merging them is well defined.

The soundness argument needs two premises worth naming:

1. **Installation-graph independence.**  Partitions share no variables,
   hence no read-write, write-read, or write-write edges.  An operation
   that reads a variable written by another component would create a
   cross-partition conflict edge, the premise of Theorem 3 would fail,
   and the partitioned schedule could expose it to the wrong value —
   which is why :func:`partition_operations` unions over
   ``operation.variables()`` (reads *and* writes), not write sets alone.
2. **Locality of the redo test.**  The redo test must depend only on
   state the operation's own component determines (the page-LSN test and
   ``always_redo`` both qualify).  A test that consulted unrelated
   variables could observe a partially recovered cross-partition state.

Threading is opt-in (``max_workers``): partitions are pure functions of
their slice of the state, workers share nothing mutable, and the merge
happens single-threaded after all partitions complete.  The engine-level
counterpart for page-granularity methods is
:mod:`repro.methods.partition`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

from repro.core.model import Operation, State
from repro.core.recovery import (
    Log,
    RecoveryOutcome,
    RedoDecision,
    RedoTest,
    always_redo,
)

__all__ = ["VariablePartition", "partition_operations", "recover_partitioned"]


class VariablePartition:
    """Incremental union-find over variable-connected components.

    :meth:`add` unions one operation's variables into the structure in
    O(|variables| α) amortized, so a live system can maintain the
    component partition of its log as it appends instead of recomputing
    union-find from scratch at recovery time (the engine trackers and
    :func:`recover_partitioned` both feed it one operation at a time).
    :meth:`components` buckets the added operations by their component
    root, preserving arrival (log) order within each bucket and ordering
    buckets by earliest operation — the bucketing pass is memoized and
    only re-runs after new :meth:`add` calls.
    """

    def __init__(self, operations: Iterable[Operation] = ()):
        self._parent: dict[str, str] = {}
        self._size: dict[str, int] = {}
        self._operations: list[Operation] = []
        self._components_cache: list[list[Operation]] | None = None
        for operation in operations:
            self.add(operation)

    def find(self, variable: str) -> str:
        """The component root of ``variable`` (KeyError if never added)."""
        parent = self._parent
        root = variable
        while parent[root] != root:
            root = parent[root]
        while parent[variable] != root:  # path compression
            parent[variable], variable = root, parent[variable]
        return root

    def _union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:  # union by size
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]

    def add(self, operation: Operation) -> None:
        """Union ``operation``'s variables into the partition."""
        variables = iter(operation.variables())
        first = next(variables)
        if first not in self._parent:
            self._parent[first] = first
            self._size[first] = 1
        for variable in variables:
            if variable not in self._parent:
                self._parent[variable] = variable
                self._size[variable] = 1
            self._union(first, variable)
        self._operations.append(operation)
        self._components_cache = None

    def connected(self, a: str, b: str) -> bool:
        """Do variables ``a`` and ``b`` share a component?"""
        return self.find(a) == self.find(b)

    def component_count(self) -> int:
        """Number of variable-connected components with operations."""
        return len({self.find(next(iter(op.variables()))) for op in self._operations})

    def components(self) -> list[list[Operation]]:
        """The added operations, grouped by component, log order within."""
        if self._components_cache is None:
            buckets: dict[str, list[Operation]] = {}
            for operation in self._operations:
                root = self.find(next(iter(operation.variables())))
                buckets.setdefault(root, []).append(operation)
            self._components_cache = list(buckets.values())
        return self._components_cache


def partition_operations(
    operations: Iterable[Operation],
) -> list[list[Operation]]:
    """Group ``operations`` into variable-connected components.

    Union-find over ``operation.variables()``; each returned partition
    preserves the input (log) order.  Partitions are returned in order
    of their earliest operation, so the concatenation of all partitions
    is a permutation of the input that Theorem 3 accepts.
    """
    return VariablePartition(operations).components()


def _recover_partition(
    operations: list[Operation],
    base: State,
    log: Log,
    redo: RedoTest,
    trace: bool,
) -> tuple[State, set[Operation], list[RedoDecision], set[str]]:
    """Replay one partition, in log order, against a private state copy."""
    current = base.copy()
    redo_set: set[Operation] = set()
    decisions: list[RedoDecision] = []
    touched: set[str] = set()
    for operation in operations:
        touched |= operation.variables()
        if redo(operation, current, log, None):
            current = operation.apply(current)
            redo_set.add(operation)
            if trace:
                decisions.append(RedoDecision(operation, True, None))
        elif trace:
            decisions.append(RedoDecision(operation, False, None))
    return current, redo_set, decisions, touched


def recover_partitioned(
    state: State,
    log: Log,
    checkpoint: Iterable[Operation] = (),
    redo: RedoTest = always_redo,
    max_workers: int | None = None,
    trace: bool = False,
    partition: VariablePartition | None = None,
) -> RecoveryOutcome:
    """Figure 6 recovery, partitioned by variable-connected component.

    Produces the same :class:`RecoveryOutcome` as the sequential
    :func:`repro.core.recovery.recover` (Theorem 3; see the module
    docstring for the argument), replaying independent components
    separately — concurrently when ``max_workers`` is set.

    A :class:`VariablePartition` maintained during normal operation may
    be passed as ``partition`` to skip the union-find pass entirely; it
    must cover at least the unrecovered operations (components are
    filtered down to them — merging components is always sound, it only
    reduces available parallelism).

    The redo test must be local to each operation's component (the
    module docstring's premise 2); per-iteration ``analyze`` protocols
    are inherently sequential and are not supported here — use the
    sequential procedure for those.
    """
    checkpoint_set = frozenset(checkpoint)
    logged: set[Operation] = set()
    unrecovered: list[Operation] = []
    for record in log:
        logged.add(record.operation)
        if record.operation not in checkpoint_set:
            unrecovered.append(record.operation)

    if partition is None:
        partitions = partition_operations(unrecovered)
    else:
        wanted = set(unrecovered)
        partitions = [
            kept
            for component in partition.components()
            if (kept := [op for op in component if op in wanted])
        ]
        missing = wanted.difference(op for part in partitions for op in part)
        if missing:
            raise ValueError(
                f"partition does not cover {len(missing)} unrecovered operations "
                f"(e.g. {sorted(op.name for op in missing)[:3]})"
            )
    position = {op: i for i, op in enumerate(unrecovered)}

    def run(ops: list[Operation]):
        return _recover_partition(ops, state, log, redo, trace)

    if max_workers is not None and max_workers > 1 and len(partitions) > 1:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            results = list(pool.map(run, partitions))
    else:
        results = [run(ops) for ops in partitions]

    # Single-threaded merge: partitions wrote disjoint variable sets, so
    # copying each partition's touched variables into the base state is
    # exactly the union of their sub-assignments.
    merged = state.copy()
    redo_set: set[Operation] = set()
    decisions: list[RedoDecision] = []
    for final, part_redo, part_decisions, touched in results:
        for variable in touched:
            merged.set(variable, final[variable])
        redo_set |= part_redo
        decisions.extend(part_decisions)
    decisions.sort(key=lambda decision: position[decision.operation])

    return RecoveryOutcome(
        state=merged,
        redo_set=redo_set,
        decisions=decisions,
        checkpoint=checkpoint_set,
        logged=frozenset(logged),
    )
