"""Partition-aware redo at the theory level (§2.2 + Theorem 3).

Two operations conflict only if they access a common variable (§2.2), so
the connected components of the "shares a variable" relation partition
the unrecovered suffix into sets with *no conflict edges between them*.
Replaying the partitions independently — each in log order — is then a
schedule whose projection onto every conflict edge matches the log:

- within a partition, log order is preserved by construction;
- across partitions there are no edges to violate.

The interleaving is therefore conflict-order consistent with the log,
and Theorem 3 (potential recoverability) promises the same final state
as the sequential left-to-right scan of Figure 6.  Because write sets
are confined to their component's variables, the per-partition results
are disjoint sub-assignments and merging them is well defined.

The soundness argument needs two premises worth naming:

1. **Installation-graph independence.**  Partitions share no variables,
   hence no read-write, write-read, or write-write edges.  An operation
   that reads a variable written by another component would create a
   cross-partition conflict edge, the premise of Theorem 3 would fail,
   and the partitioned schedule could expose it to the wrong value —
   which is why :func:`partition_operations` unions over
   ``operation.variables()`` (reads *and* writes), not write sets alone.
2. **Locality of the redo test.**  The redo test must depend only on
   state the operation's own component determines (the page-LSN test and
   ``always_redo`` both qualify).  A test that consulted unrelated
   variables could observe a partially recovered cross-partition state.

Threading is opt-in (``max_workers``): partitions are pure functions of
their slice of the state, workers share nothing mutable, and the merge
happens single-threaded after all partitions complete.  The engine-level
counterpart for page-granularity methods is
:mod:`repro.methods.partition`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

from repro.core.model import Operation, State
from repro.core.recovery import (
    Log,
    RecoveryOutcome,
    RedoDecision,
    RedoTest,
    always_redo,
)

__all__ = ["partition_operations", "recover_partitioned"]


def partition_operations(
    operations: Iterable[Operation],
) -> list[list[Operation]]:
    """Group ``operations`` into variable-connected components.

    Union-find over ``operation.variables()``; each returned partition
    preserves the input (log) order.  Partitions are returned in order
    of their earliest operation, so the concatenation of all partitions
    is a permutation of the input that Theorem 3 accepts.
    """
    parent: dict[str, str] = {}

    def find(variable: str) -> str:
        root = variable
        while parent[root] != root:
            root = parent[root]
        while parent[variable] != root:  # path compression
            parent[variable], variable = root, parent[variable]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    ordered = list(operations)
    for operation in ordered:
        variables = iter(operation.variables())
        first = next(variables)
        parent.setdefault(first, first)
        for variable in variables:
            parent.setdefault(variable, variable)
            union(first, variable)

    partitions: dict[str, list[Operation]] = {}
    for operation in ordered:
        root = find(next(iter(operation.variables())))
        partitions.setdefault(root, []).append(operation)
    return list(partitions.values())


def _recover_partition(
    operations: list[Operation],
    base: State,
    log: Log,
    redo: RedoTest,
    trace: bool,
) -> tuple[State, set[Operation], list[RedoDecision], set[str]]:
    """Replay one partition, in log order, against a private state copy."""
    current = base.copy()
    redo_set: set[Operation] = set()
    decisions: list[RedoDecision] = []
    touched: set[str] = set()
    for operation in operations:
        touched |= operation.variables()
        if redo(operation, current, log, None):
            current = operation.apply(current)
            redo_set.add(operation)
            if trace:
                decisions.append(RedoDecision(operation, True, None))
        elif trace:
            decisions.append(RedoDecision(operation, False, None))
    return current, redo_set, decisions, touched


def recover_partitioned(
    state: State,
    log: Log,
    checkpoint: Iterable[Operation] = (),
    redo: RedoTest = always_redo,
    max_workers: int | None = None,
    trace: bool = False,
) -> RecoveryOutcome:
    """Figure 6 recovery, partitioned by variable-connected component.

    Produces the same :class:`RecoveryOutcome` as the sequential
    :func:`repro.core.recovery.recover` (Theorem 3; see the module
    docstring for the argument), replaying independent components
    separately — concurrently when ``max_workers`` is set.

    The redo test must be local to each operation's component (the
    module docstring's premise 2); per-iteration ``analyze`` protocols
    are inherently sequential and are not supported here — use the
    sequential procedure for those.
    """
    checkpoint_set = frozenset(checkpoint)
    logged: set[Operation] = set()
    unrecovered: list[Operation] = []
    for record in log:
        logged.add(record.operation)
        if record.operation not in checkpoint_set:
            unrecovered.append(record.operation)

    partitions = partition_operations(unrecovered)
    position = {op: i for i, op in enumerate(unrecovered)}

    def run(ops: list[Operation]):
        return _recover_partition(ops, state, log, redo, trace)

    if max_workers is not None and max_workers > 1 and len(partitions) > 1:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            results = list(pool.map(run, partitions))
    else:
        results = [run(ops) for ops in partitions]

    # Single-threaded merge: partitions wrote disjoint variable sets, so
    # copying each partition's touched variables into the base state is
    # exactly the union of their sub-assignments.
    merged = state.copy()
    redo_set: set[Operation] = set()
    decisions: list[RedoDecision] = []
    for final, part_redo, part_decisions, touched in results:
        for variable in touched:
            merged.set(variable, final[variable])
        redo_set |= part_redo
        decisions.extend(part_decisions)
    decisions.sort(key=lambda decision: position[decision.operation])

    return RecoveryOutcome(
        state=merged,
        redo_set=redo_set,
        decisions=decisions,
        checkpoint=checkpoint_set,
        logged=frozenset(logged),
    )
