"""Installation graphs (§3.1).

The installation graph is the conflict graph with the edges that exist
*solely* because of write–read conflicts removed.  Its prefixes are
exactly the operation sets that may appear installed in a potentially
recoverable state — strictly more sets than conflict-graph prefixes
(Scenario 2: ``{A}`` is an installation-graph prefix but not a
conflict-graph prefix).

Two writers of the same variable always share a ``ww`` edge, which
survives the removal, so the installation state graph (the conflict state
graph restructured on installation edges) is still a well-formed state
graph and every installation-graph prefix determines a state.

The module also provides the earlier VLDB'95 definition — which removed
certain write–write edges as well — so the paper's §1.3 claim that the two
definitions yield the same explainable states can be tested empirically
(experiment E3).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.conflict import RW, WR, WW, ConflictGraph
from repro.core.model import Operation, State
from repro.core.state_graph import StateGraph
from repro.graphs import Dag, all_prefixes


class InstallationGraph:
    """The installation graph derived from a conflict graph.

    Subscribes to the conflict graph's append feed: when an operation is
    appended to the conflict graph, its incoming edges (whose labels are
    final at that moment — conflict edges only ever point into the newest
    operation) are filtered on the fly, so the installation graph tracks
    a growing conflict graph with no rebuild.
    """

    def __init__(self, conflict: ConflictGraph):
        self.conflict = conflict
        self.dag = conflict.dag.filter_edges(
            lambda source, target, labels: labels != {WR}
        )
        self._state_graph_cache: tuple[State, "StateGraph"] | None = None
        conflict.subscribe(self._on_append)

    def _on_append(self, operation: Operation, incoming: dict[str, set[str]]) -> None:
        """Apply one conflict-graph append: keep every new edge whose
        label set is not exactly {wr} (§3.1)."""
        self.dag.add_node(operation.name)
        for source, labels in incoming.items():
            if labels != {WR}:
                self.dag.add_edge(
                    source, operation.name, labels=labels, check_acyclic=False
                )
        self._state_graph_cache = None

    # ------------------------------------------------------------------
    # Lookup / order
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.conflict)

    @property
    def operations(self) -> tuple[Operation, ...]:
        return self.conflict.operations

    def operation(self, name: str) -> Operation:
        """The operation named ``name`` (KeyError if absent)."""
        return self.conflict.operation(name)

    def has_edge(self, source: Operation, target: Operation) -> bool:
        """Is there a direct installation edge from ``source`` to ``target``?"""
        return self.dag.has_edge(source.name, target.name)

    def removed_edges(self) -> list[tuple[Operation, Operation]]:
        """The conflict-graph edges absent from the installation graph."""
        return [
            (source, target)
            for source, target, labels in self.conflict.edges()
            if labels == {WR}
        ]

    def is_prefix(self, operations: Iterable[Operation]) -> bool:
        """True iff ``operations`` induces a prefix of the installation graph."""
        return self.dag.is_prefix({op.name for op in operations})

    def prefixes(self, limit: int | None = None) -> Iterator[frozenset[Operation]]:
        """Every installation-graph prefix, as frozensets of operations."""
        for names in all_prefixes(self.dag, limit=limit):
            yield frozenset(self.conflict.operation(name) for name in names)

    def minimal_uninstalled(self, installed: Iterable[Operation]) -> set[Operation]:
        """Minimal *conflict-graph* operations outside the installed set (§3.3).

        Replay order is conflict-graph order even though installed sets are
        installation-graph prefixes, so minimality here is taken in the
        conflict graph.
        """
        installed_set = set(installed)
        uninstalled = [op for op in self.operations if op not in installed_set]
        return self.conflict.minimal_operations(uninstalled)

    # ------------------------------------------------------------------
    # Determined states
    # ------------------------------------------------------------------

    def state_graph(self, initial: State) -> StateGraph:
        """The installation state graph (conflict-state-graph values,
        installation edges).

        Memoized per initial state: repeated invariant checks against the
        same starting point (the audit loops) reuse one graph; any append
        to the underlying conflict graph invalidates the memo.
        """
        cached = self._state_graph_cache
        if cached is not None and cached[0] == initial:
            return cached[1]
        conflict_sg = StateGraph.conflict_state_graph(self.conflict, initial)
        graph = StateGraph(self.dag.copy())
        for operation in self.operations:
            graph.add_node(
                operation.name,
                conflict_sg.ops(operation.name),
                conflict_sg.writes(operation.name),
            )
        graph.set_positions(
            {op.name: index for index, op in enumerate(self.operations)}
        )
        self._state_graph_cache = (initial.copy(), graph)
        return graph

    def determined_state(
        self, prefix: Iterable[Operation], initial: State
    ) -> State:
        """The state determined by an installation-graph prefix (§3.1).

        Contains the final (conflict-order) values of every variable
        written by an operation in the prefix, and initial values
        elsewhere.  Raises ValueError if ``prefix`` is not a prefix.
        """
        members = {op.name for op in prefix}
        if not self.dag.is_prefix(members):
            raise ValueError("not a prefix of the installation graph")
        return self.state_graph(initial).determined_state(initial, members)

    def __repr__(self) -> str:
        return (
            f"InstallationGraph(ops={len(self)}, edges={self.dag.edge_count()}, "
            f"removed={len(self.removed_edges())})"
        )


def vldb95_dag(conflict: ConflictGraph) -> Dag:
    """A *naive* ww-relaxed installation graph, for the §1.3 discussion.

    The earlier VLDB'95 definition removed certain write–write edges in
    addition to write–read edges, via what the SIGMOD'03 paper calls "an
    elaborate construction".  This function implements the obvious naive
    rule — drop the ``ww`` edge ``O -> P`` on ``x`` when ``P`` writes
    ``x`` blindly and nothing reads ``x`` between them — and the tests
    demonstrate *why* the real construction had to be elaborate: the naive
    rule admits prefixes whose determined states are unrecoverable
    (readers of ``x`` ordered before ``O`` lose their transitive ordering
    to ``P``, and replaying them clobbers the installed value).  The
    experiments then confirm the §1.3 equivalence at the level that
    matters: a state is recoverable iff it is explainable by a prefix of
    the *simple* (wr-removal-only) installation graph.
    """
    dag = Dag()
    for operation in conflict.operations:
        dag.add_node(operation.name)
    order = {op.name: i for i, op in enumerate(conflict.operations)}
    for source, target, labels in conflict.edges():
        reasons = set()
        if RW in labels:
            reasons.add(RW)
        if WW in labels:
            # Find the variables responsible for the ww conflict and check
            # whether each one is blind-written by the target with no
            # intervening reader.
            for variable in source.write_set & target.write_set:
                if not _is_droppable_ww(conflict, order, source, target, variable):
                    reasons.add(WW)
                    break
        if reasons:
            dag.add_edge(source.name, target.name, labels=reasons, check_acyclic=False)
    return dag


def _is_droppable_ww(
    conflict: ConflictGraph,
    order: dict[str, int],
    source: Operation,
    target: Operation,
    variable: str,
) -> bool:
    lo, hi = order[source.name], order[target.name]
    between = conflict.operations[lo + 1 : hi]
    if any(other.writes(variable) for other in between):
        # An intermediate writer means this variable is not responsible for
        # the ww edge at all, so it cannot force the edge to be kept.
        return True
    if not target.writes_blindly(variable):
        return False
    return not any(other.reads(variable) for other in between)
