"""Variable → accessor index maintained on conflict-graph appends.

Exposure (§2.3), explainability (§3.2), and the Recovery Invariant checker
all ask per-variable questions: *who accesses x, in what order, and does
the first accessor outside the installed set read or blind-write it?*
Scanning every operation per question costs O(N) per variable; this index
keeps, for each variable, the ordered reader/writer/accessor lists in
generating-sequence order, appended to in O(|read ∪ write|) as the
conflict graph grows.

Log order extends conflict order, and for a single variable the order is
even sharper (the fact the O(accessors) exposure check in
:mod:`repro.core.exposed` rests on): a writer of ``x`` is conflict-ordered
before every later accessor of ``x`` — consecutive writers carry ``ww``
edges, and the edge into each reader/writer from its preceding writer
completes the path — and a reader of ``x`` is conflict-ordered before
every later *writer* of ``x`` (its ``rw`` edge into the next writer, then
the ``ww`` chain).  So the log-order-first accessor of ``x`` outside the
installed set is always a minimal accessor, and it is the *unique*
minimal accessor whenever it writes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, KeysView, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.model import Operation

_EMPTY: tuple = ()


class VariableIndex:
    """Per-variable ordered accessor lists, reader/writer split.

    Lists are in generating-sequence (log) order and are appended to by
    :meth:`append`; callers must treat the returned sequences as
    read-only views.
    """

    __slots__ = ("_accessors", "_readers", "_writers")

    def __init__(self) -> None:
        self._accessors: dict[str, list[Operation]] = {}
        self._readers: dict[str, list[Operation]] = {}
        self._writers: dict[str, list[Operation]] = {}

    def append(self, operation: "Operation") -> None:
        """Index one appended operation (O(variables it touches))."""
        for variable in operation.read_set:
            self._accessors.setdefault(variable, []).append(operation)
            self._readers.setdefault(variable, []).append(operation)
        for variable in operation.write_set:
            if variable not in operation.read_set:
                self._accessors.setdefault(variable, []).append(operation)
            self._writers.setdefault(variable, []).append(operation)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def variables(self) -> KeysView[str]:
        """Every variable accessed by any indexed operation."""
        return self._accessors.keys()

    def __contains__(self, variable: str) -> bool:
        return variable in self._accessors

    def __len__(self) -> int:
        return len(self._accessors)

    def accessors(self, variable: str) -> Sequence["Operation"]:
        """Operations accessing ``variable``, in log order (read-only)."""
        return self._accessors.get(variable, _EMPTY)

    def readers(self, variable: str) -> Sequence["Operation"]:
        """Operations reading ``variable``, in log order (read-only)."""
        return self._readers.get(variable, _EMPTY)

    def writers(self, variable: str) -> Sequence["Operation"]:
        """Operations writing ``variable``, in log order (read-only)."""
        return self._writers.get(variable, _EMPTY)

    # ------------------------------------------------------------------
    # The exposure primitives
    # ------------------------------------------------------------------

    def accessors_outside(
        self, installed: "set[Operation] | frozenset[Operation]", variable: str
    ) -> Iterator["Operation"]:
        """Accessors of ``variable`` not in ``installed``, lazily, in log
        order — no list is materialized."""
        return (
            operation
            for operation in self._accessors.get(variable, _EMPTY)
            if operation not in installed
        )

    def first_accessor_outside(
        self, installed: "set[Operation] | frozenset[Operation]", variable: str
    ) -> "Operation | None":
        """The log-order-first accessor of ``variable`` outside
        ``installed`` (None if every accessor is installed).

        This operation is always minimal among the outside accessors in
        conflict-graph order, and uniquely minimal when it writes (module
        docstring) — which is why exposure needs nothing else.
        """
        for operation in self._accessors.get(variable, _EMPTY):
            if operation not in installed:
                return operation
        return None
