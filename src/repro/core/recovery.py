"""The abstract redo recovery procedure (§4, Figure 6).

Recovery begins with the state and the log as of the crash, plus a
checkpoint (a set of operations recovery may ignore).  It walks the
unrecovered operations in log order; for each it runs an *analysis* phase
and then a *redo test*, replaying the operation iff the test says yes.

The procedure is deliberately parameterized the way the paper's is:

- ``analyze(state, log, unrecovered, analysis) -> analysis`` runs at the
  top of every loop iteration.  The common "one analysis pass at the
  start" pattern is the special case that does real work only when the
  incoming analysis is ``None`` (see :func:`analysis_once`).
- ``redo(operation, state, log, analysis) -> bool`` decides replay.

:func:`recover` returns a :class:`RecoveryOutcome` recording the final
state, the ``redo_set``, the per-iteration trace, and the ``installed_i``
bookkeeping of §4.4 — everything Corollary 4 and the Recovery Invariant
talk about.

Since the log-stack unification, :class:`Log` is a *view* over the system
:class:`~repro.logmgr.manager.LogManager` — the same segmented store, the
same :class:`~repro.logmgr.records.LogRecord` type, the same single
LSN-assigning append path the §6 method engines use.  A theory log is
simply a manager whose payloads are abstract operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.conflict import ConflictGraph
from repro.core.model import Operation, State
from repro.logmgr.codec import LazyRecord
from repro.logmgr.manager import LogManager
from repro.logmgr.records import LogRecord

__all__ = [
    "Log",
    "LogRecord",
    "RedoDecision",
    "RecoveryOutcome",
    "always_redo",
    "analysis_once",
    "graph_analysis",
    "recover",
]


class Log:
    """A log for a conflict graph (§4.1), as a view over a log manager.

    Practical logs are linear, and the backing
    :class:`~repro.logmgr.manager.LogManager` stores records in a total
    order; §4.1 only requires consistency with the conflict order, which
    :meth:`is_log_for` verifies.  Records are append-only and LSNs are
    dense and increasing — assigned by the manager, the system's single
    LSN authority, never by this class.

    A ``Log`` may own a fresh manager (the theory-only use) or wrap one
    that an engine is writing through (the audit use); either way the
    records are the same objects, with no translation layer.  Suffix
    views (:meth:`suffix_from`) share the manager and materialize
    nothing.
    """

    def __init__(
        self,
        records: Iterable[LogRecord | Operation] = (),
        manager: LogManager | None = None,
        start_lsn: int = 0,
    ):
        self._manager = manager if manager is not None else LogManager()
        self._start = start_lsn
        # name -> record index for record_for, extended lazily so appends
        # made directly through a shared manager are picked up too.
        self._by_name: dict[Any, LogRecord] = {}
        self._indexed_through = start_lsn
        # Incrementally maintained conflict graph over operations(log);
        # built on first conflict_graph() call, then only appended to.
        self._conflict: ConflictGraph | None = None
        self._installation: Any = None
        self._graphed_through = start_lsn
        for item in records:
            if isinstance(item, (LogRecord, LazyRecord)):
                self._manager.append(item.payload, **item.labels)
            else:
                self._manager.append(item)

    @property
    def manager(self) -> LogManager:
        """The backing log manager (shared with any engine writing it)."""
        return self._manager

    @staticmethod
    def from_operations(operations: Sequence[Operation]) -> "Log":
        return Log(operations)

    @staticmethod
    def from_directory(directory, fsync: bool = True) -> "Log":
        """A cold-start view: wrap a manager rebuilt from binary segment
        files alone (:meth:`~repro.logmgr.manager.LogManager.open`,
        torn-tail rule applied).  The records come back as the typed §6
        payloads the engines logged — everything on disk is stable, so
        the view's records *are* the stable prefix recovery reads."""
        manager = LogManager.open(directory, fsync=fsync)
        return Log(manager=manager)

    def append(self, operation: Operation, **labels: Any) -> LogRecord:
        """Append ``operation``; the manager assigns the next LSN."""
        return self._manager.append(operation, **labels)

    def records(self) -> list[LogRecord]:
        """All records, in log order, as a list.  Call sites that only
        iterate should use ``iter(log)`` — it streams from the segmented
        store without copying."""
        return list(self)

    def __len__(self) -> int:
        start = max(self._start, self._manager.head_lsn)
        return max(0, self._manager.next_lsn - start)

    def __iter__(self) -> Iterator[LogRecord]:
        return self._manager.records_from(self._start)

    def operations(self) -> list[Operation]:
        """``operations(log)`` in log order."""
        return [record.operation for record in self]

    def iter_operations(self) -> Iterator[Operation]:
        """Stream ``operations(log)`` without building a list."""
        return (record.operation for record in self)

    def record_for(self, operation: Operation) -> LogRecord:
        """The record logging ``operation`` (KeyError if not logged).

        Backed by a name -> record index maintained incrementally, so
        calls inside redo loops are O(1) amortized instead of a linear
        scan per lookup.
        """
        self._extend_index()
        key = getattr(operation, "name", operation)
        try:
            return self._by_name[key]
        except KeyError:
            raise KeyError(f"no log record for operation {key!r}") from None

    def _extend_index(self) -> None:
        if self._indexed_through >= self._manager.next_lsn:
            return
        for record in self._manager.records_from(self._indexed_through):
            key = getattr(record.payload, "name", record.payload)
            self._by_name.setdefault(key, record)
        self._indexed_through = self._manager.next_lsn

    def conflict_graph(self) -> ConflictGraph:
        """The conflict graph of ``operations(log)``, maintained
        incrementally.

        The first call builds the graph in one O(records + edges) pass;
        later calls append only the records logged since the last call
        (O(degree) each), including appends made directly through a
        shared manager.  Lemma 1 makes the left-to-right construction
        order-safe, so the live graph always equals the from-scratch one.
        """
        if self._conflict is None:
            self._conflict = ConflictGraph()
            self._graphed_through = self._start
        if self._graphed_through < self._manager.next_lsn:
            for record in self._manager.records_from(self._graphed_through):
                self._conflict.append(record.operation)
            self._graphed_through = self._manager.next_lsn
        return self._conflict

    def installation_graph(self):
        """The installation graph over :meth:`conflict_graph`, built once
        and kept current by the conflict graph's append feed."""
        from repro.core.installation import InstallationGraph

        conflict = self.conflict_graph()
        if self._installation is None or self._installation.conflict is not conflict:
            self._installation = InstallationGraph(conflict)
        return self._installation

    def is_log_for(self, conflict: ConflictGraph) -> bool:
        """§4.1: same operations, and log order extends conflict order."""
        position: dict[str, int] = {}
        count = 0
        for index, record in enumerate(self):
            position[record.operation.name] = index
            count += 1
        if len(position) != count:
            return False  # duplicate operations
        if set(position) != {op.name for op in conflict.operations}:
            return False
        return all(
            position[a.name] < position[b.name]
            for a, b, _ in conflict.edges()
        )

    def suffix_from(self, lsn: int) -> "Log":
        """Records with LSN >= ``lsn`` (what a checkpoint lets recovery
        scan) — a lazy view sharing this log's manager, not a copy."""
        return Log(manager=self._manager, start_lsn=max(lsn, self._start))

    def __repr__(self) -> str:
        return f"Log(records={len(self)})"


RedoTest = Callable[[Operation, State, Log, Any], bool]
AnalyzeFn = Callable[[State, Log, "set[Operation]", Any], Any]


@dataclass
class RedoDecision:
    """Trace entry for one iteration of the recovery loop."""

    operation: Operation
    redone: bool
    analysis: Any


@dataclass
class RecoveryOutcome:
    """Everything §4.4 defines about one execution of ``recover``."""

    state: State
    redo_set: set[Operation]
    decisions: list[RedoDecision]
    checkpoint: frozenset[Operation]
    logged: frozenset[Operation]

    @property
    def installed(self) -> set[Operation]:
        """``operations(log) - redo_set`` — the installed operations."""
        return set(self.logged) - self.redo_set

    def installed_after(self, iteration: int) -> set[Operation]:
        """``installed_i``: logged operations that will not be redone after
        iteration ``iteration`` (0 = before the first iteration).

        Requires the per-iteration trace — run :func:`recover` with
        ``trace=True`` (the default)."""
        future_redos = {
            decision.operation
            for decision in self.decisions[iteration:]
            if decision.redone
        }
        return set(self.logged) - future_redos

    def replayed_in_order(self) -> list[Operation]:
        """The operations the redo test chose, in replay order."""
        return [decision.operation for decision in self.decisions if decision.redone]


def analysis_once(analysis_fn: Callable[[State, Log, set], Any]) -> AnalyzeFn:
    """Lift a run-once analysis into the per-iteration protocol.

    The returned function performs ``analysis_fn`` when the incoming
    analysis is ``None`` (the first iteration) and is the identity
    afterwards — the "single analysis phase at the start" pattern of §4.3.
    """

    def analyze(state: State, log: Log, unrecovered: set, analysis: Any) -> Any:
        if analysis is None:
            return analysis_fn(state, log, unrecovered)
        return analysis

    return analyze


def graph_analysis() -> AnalyzeFn:
    """An analysis phase that provides the log's theory graphs.

    On the first iteration it obtains the log's incrementally maintained
    conflict graph (:meth:`Log.conflict_graph` — no rebuild if the log
    already kept one live during normal operation) and the installation
    graph derived from it (:meth:`Log.installation_graph`); both ride
    along in the analysis value as ``{"conflict": ..., "installation":
    ...}`` for redo tests that want to consult conflict order or
    installation prefixes.
    """

    def analyze(state: State, log: Log, unrecovered: set, analysis: Any) -> Any:
        if analysis is None:
            return {
                "conflict": log.conflict_graph(),
                "installation": log.installation_graph(),
            }
        return analysis

    return analyze


def always_redo(operation: Operation, state: State, log: Log, analysis: Any) -> bool:
    """The trivial redo test: replay everything not checkpointed.

    This is what logical (§6.1) and physical (§6.2) recovery do — the
    subtlety lives entirely in how their checkpoints move operations out
    of the unrecovered set.
    """
    return True


def recover(
    state: State,
    log: Log,
    checkpoint: Iterable[Operation] = (),
    redo: RedoTest = always_redo,
    analyze: AnalyzeFn | None = None,
    trace: bool = True,
) -> RecoveryOutcome:
    """The redo recovery procedure of Figure 6, streaming.

    ``state`` is consumed conceptually but not mutated; the outcome holds
    the rebuilt state.  ``checkpoint`` is the set of operations recovery
    may ignore.  Operations are considered in log order: the minimal
    unrecovered operation is always the earliest unrecovered log record,
    which is minimal in any order the log is consistent with.

    When no ``analyze`` function is given, the log is consumed as a
    single streaming pass — no record list is materialized, so a suffix
    view over a segmented manager is processed in O(segment) working
    memory (plus the operation sets the outcome reports).  A custom
    ``analyze`` receives the set of still-unrecovered operations each
    iteration, which requires the unrecovered suffix up front; that path
    materializes one list, exactly as the paper's per-iteration protocol
    demands.  ``trace=False`` skips the per-iteration decision trace,
    which long recoveries neither need nor can afford.
    """
    current = state.copy()
    checkpoint_set = frozenset(checkpoint)
    decisions: list[RedoDecision] = []
    redo_set: set[Operation] = set()
    logged: set[Operation] = set()

    if analyze is None:
        # Streaming fast path: one pass, no analysis state.
        for record in log:
            operation = record.operation
            logged.add(operation)
            if operation in checkpoint_set:
                continue
            if redo(operation, current, log, None):
                current = operation.apply(current)
                redo_set.add(operation)
                if trace:
                    decisions.append(RedoDecision(operation, True, None))
            elif trace:
                decisions.append(RedoDecision(operation, False, None))
        return RecoveryOutcome(
            state=current,
            redo_set=redo_set,
            decisions=decisions,
            checkpoint=checkpoint_set,
            logged=frozenset(logged),
        )

    unrecovered: list[Operation] = []
    for record in log:
        logged.add(record.operation)
        if record.operation not in checkpoint_set:
            unrecovered.append(record.operation)

    analysis: Any = None
    for index, operation in enumerate(unrecovered):
        # minimal in log order; analyze sees the remaining suffix as a set
        analysis = analyze(current, log, set(unrecovered[index:]), analysis)
        if redo(operation, current, log, analysis):
            current = operation.apply(current)
            redo_set.add(operation)
            if trace:
                decisions.append(RedoDecision(operation, True, analysis))
        elif trace:
            decisions.append(RedoDecision(operation, False, analysis))

    return RecoveryOutcome(
        state=current,
        redo_set=redo_set,
        decisions=decisions,
        checkpoint=checkpoint_set,
        logged=frozenset(logged),
    )
