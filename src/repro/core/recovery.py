"""The abstract redo recovery procedure (§4, Figure 6).

Recovery begins with the state and the log as of the crash, plus a
checkpoint (a set of operations recovery may ignore).  It walks the
unrecovered operations in log order; for each it runs an *analysis* phase
and then a *redo test*, replaying the operation iff the test says yes.

The procedure is deliberately parameterized the way the paper's is:

- ``analyze(state, log, unrecovered, analysis) -> analysis`` runs at the
  top of every loop iteration.  The common "one analysis pass at the
  start" pattern is the special case that does real work only when the
  incoming analysis is ``None`` (see :func:`analysis_once`).
- ``redo(operation, state, log, analysis) -> bool`` decides replay.

:func:`recover` returns a :class:`RecoveryOutcome` recording the final
state, the ``redo_set``, the per-iteration trace, and the ``installed_i``
bookkeeping of §4.4 — everything Corollary 4 and the Recovery Invariant
talk about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.conflict import ConflictGraph
from repro.core.model import Operation, State


@dataclass(frozen=True)
class LogRecord:
    """One log record: an operation plus bookkeeping labels.

    ``lsn`` is the record's log sequence number (its position for linear
    logs).  ``labels`` carries whatever extra information a concrete
    recovery method logs — page ids, byte images, before/after values —
    opaque to the abstract procedure.
    """

    lsn: int
    operation: Operation
    labels: dict = field(default_factory=dict, compare=False, hash=False)

    def __str__(self) -> str:
        return f"[{self.lsn}] {self.operation}"


class Log:
    """A log for a conflict graph (§4.1).

    Practical logs are linear, and this class stores records in a total
    order; §4.1 only requires consistency with the conflict order, which
    :meth:`is_log_for` verifies.  Records are append-only and LSNs are
    dense and increasing.
    """

    def __init__(self, records: Iterable[LogRecord] = ()):
        self._records: list[LogRecord] = list(records)

    @staticmethod
    def from_operations(operations: Sequence[Operation]) -> "Log":
        return Log(
            LogRecord(lsn=index, operation=operation)
            for index, operation in enumerate(operations)
        )

    def append(self, operation: Operation, **labels: Any) -> LogRecord:
        """Append ``operation`` with the next LSN; returns the record."""
        record = LogRecord(lsn=len(self._records), operation=operation, labels=labels)
        self._records.append(record)
        return record

    def records(self) -> list[LogRecord]:
        """All records, in log order."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def operations(self) -> list[Operation]:
        """``operations(log)`` in log order."""
        return [record.operation for record in self._records]

    def record_for(self, operation: Operation) -> LogRecord:
        """The record logging ``operation`` (KeyError if not logged)."""
        for record in self._records:
            if record.operation == operation:
                return record
        raise KeyError(f"no log record for operation {operation.name!r}")

    def is_log_for(self, conflict: ConflictGraph) -> bool:
        """§4.1: same operations, and log order extends conflict order."""
        if set(self.operations()) != set(conflict.operations):
            return False
        position = {record.operation.name: index for index, record in enumerate(self._records)}
        if len(position) != len(self._records):
            return False  # duplicate operations
        return all(
            position[a.name] < position[b.name]
            for a, b, _ in conflict.edges()
        )

    def suffix_from(self, lsn: int) -> "Log":
        """Records with LSN >= ``lsn`` (what a checkpoint lets recovery scan)."""
        return Log(record for record in self._records if record.lsn >= lsn)

    def __repr__(self) -> str:
        return f"Log(records={len(self._records)})"


RedoTest = Callable[[Operation, State, Log, Any], bool]
AnalyzeFn = Callable[[State, Log, "set[Operation]", Any], Any]


@dataclass
class RedoDecision:
    """Trace entry for one iteration of the recovery loop."""

    operation: Operation
    redone: bool
    analysis: Any


@dataclass
class RecoveryOutcome:
    """Everything §4.4 defines about one execution of ``recover``."""

    state: State
    redo_set: set[Operation]
    decisions: list[RedoDecision]
    checkpoint: frozenset[Operation]
    logged: frozenset[Operation]

    @property
    def installed(self) -> set[Operation]:
        """``operations(log) - redo_set`` — the installed operations."""
        return set(self.logged) - self.redo_set

    def installed_after(self, iteration: int) -> set[Operation]:
        """``installed_i``: logged operations that will not be redone after
        iteration ``iteration`` (0 = before the first iteration)."""
        future_redos = {
            decision.operation
            for decision in self.decisions[iteration:]
            if decision.redone
        }
        return set(self.logged) - future_redos

    def replayed_in_order(self) -> list[Operation]:
        """The operations the redo test chose, in replay order."""
        return [decision.operation for decision in self.decisions if decision.redone]


def analysis_once(analysis_fn: Callable[[State, Log, set], Any]) -> AnalyzeFn:
    """Lift a run-once analysis into the per-iteration protocol.

    The returned function performs ``analysis_fn`` when the incoming
    analysis is ``None`` (the first iteration) and is the identity
    afterwards — the "single analysis phase at the start" pattern of §4.3.
    """

    def analyze(state: State, log: Log, unrecovered: set, analysis: Any) -> Any:
        if analysis is None:
            return analysis_fn(state, log, unrecovered)
        return analysis

    return analyze


def always_redo(operation: Operation, state: State, log: Log, analysis: Any) -> bool:
    """The trivial redo test: replay everything not checkpointed.

    This is what logical (§6.1) and physical (§6.2) recovery do — the
    subtlety lives entirely in how their checkpoints move operations out
    of the unrecovered set.
    """
    return True


def recover(
    state: State,
    log: Log,
    checkpoint: Iterable[Operation] = (),
    redo: RedoTest = always_redo,
    analyze: AnalyzeFn | None = None,
) -> RecoveryOutcome:
    """The redo recovery procedure of Figure 6.

    ``state`` is consumed conceptually but not mutated; the outcome holds
    the rebuilt state.  ``checkpoint`` is the set of operations recovery
    may ignore.  Operations are considered in log order: the minimal
    unrecovered operation is always the earliest unrecovered log record,
    which is minimal in any order the log is consistent with.
    """
    if analyze is None:
        analyze = analysis_once(lambda s, l, u: None)

    current = state.copy()
    logged = frozenset(log.operations())
    checkpoint_set = frozenset(checkpoint)
    unrecovered = [
        record.operation
        for record in log
        if record.operation not in checkpoint_set
    ]
    analysis: Any = None
    decisions: list[RedoDecision] = []
    redo_set: set[Operation] = set()

    remaining = list(unrecovered)
    while remaining:
        operation = remaining[0]  # minimal in log order
        analysis = analyze(current, log, set(remaining), analysis)
        if redo(operation, current, log, analysis):
            current = operation.apply(current)
            redo_set.add(operation)
            decisions.append(RedoDecision(operation, True, analysis))
        else:
            decisions.append(RedoDecision(operation, False, analysis))
        remaining = remaining[1:]

    return RecoveryOutcome(
        state=current,
        redo_set=redo_set,
        decisions=decisions,
        checkpoint=checkpoint_set,
        logged=logged,
    )
