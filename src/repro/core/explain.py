"""Explainable states and operation applicability (§3.2–§3.3).

A prefix σ of the installation graph **explains** a state S when every
variable *exposed by σ* has the same value in S as in the state determined
by σ.  Unexposed variables may hold anything — their values are
overwritten before being read during a replay.  States explained by some
prefix are **explainable**, and Theorem 3 (in :mod:`repro.core.replay`)
shows they are potentially recoverable.

An operation O is **applicable** to S when O's read-set variables have the
same values in S as in the state determined by O's conflict-graph
predecessors, so O reads — and therefore writes — the same values it did
in the original execution.  The §3.3 replay step lemma
(:func:`replay_step_preserves_explanation`) is the induction step of
Theorem 3 and is property-tested directly.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.exposed import exposed_variables
from repro.core.installation import InstallationGraph
from repro.core.model import Operation, State


def explains(
    installation: InstallationGraph,
    prefix: Iterable[Operation],
    state: State,
    initial: State,
) -> bool:
    """Does installation-graph prefix ``prefix`` explain ``state`` (§3.2)?

    Raises ValueError if ``prefix`` is not actually a prefix of the
    installation graph; returns a boolean verdict otherwise.
    """
    members = set(prefix)
    if not installation.is_prefix(members):
        raise ValueError("explains() requires a prefix of the installation graph")
    determined = installation.determined_state(members, initial)
    exposed = exposed_variables(installation.conflict, members)
    return state.agrees_with(determined, exposed)


def find_explaining_prefixes(
    installation: InstallationGraph,
    state: State,
    initial: State,
    limit: int | None = None,
) -> Iterator[frozenset[Operation]]:
    """All installation-graph prefixes that explain ``state``.

    Exhaustive search over prefixes; intended for the worked figures, the
    tests, and the recovery checker, where graphs are small.  Yields
    prefixes in no particular order.
    """
    for prefix in installation.prefixes(limit=limit):
        if explains(installation, prefix, state, initial):
            yield prefix


def is_explainable(
    installation: InstallationGraph,
    state: State,
    initial: State,
) -> bool:
    """Is ``state`` explained by *some* installation-graph prefix?"""
    return next(
        find_explaining_prefixes(installation, state, initial), None
    ) is not None


def is_applicable(
    installation: InstallationGraph,
    operation: Operation,
    state: State,
    initial: State,
) -> bool:
    """Is ``operation`` applicable to ``state`` (§3.3)?

    Compares the operation's read-set values in ``state`` with their
    values in the state determined by the operation's conflict-graph
    predecessors.
    """
    conflict = installation.conflict
    predecessors = conflict.predecessors(operation)
    # The installation state graph carries the same per-node values and
    # the same total order among same-variable writers (ww edges survive
    # §3.1 edge removal), so its memoized instance answers conflict-graph
    # determined-state queries too.
    state_graph = installation.state_graph(initial)
    reference = state_graph.determined_state(
        initial, {op.name for op in predecessors}
    )
    return state.agrees_with(reference, operation.read_set)


def extend_prefix(
    installation: InstallationGraph,
    prefix: Iterable[Operation],
    operation: Operation,
) -> frozenset[Operation]:
    """``sigma; O`` — the prefix extended by a minimal uninstalled operation.

    Validates that ``operation`` really is a minimal uninstalled operation
    after ``prefix`` and that the result is again an installation-graph
    prefix (it always is; the check is an executable proof obligation).
    """
    members = set(prefix)
    minimal = installation.minimal_uninstalled(members)
    if operation not in minimal:
        raise ValueError(
            f"{operation.name!r} is not a minimal uninstalled operation"
        )
    extended = frozenset(members | {operation})
    if not installation.is_prefix(extended):
        raise AssertionError(
            "extending a prefix by a minimal uninstalled operation must "
            "yield a prefix; the theory guarantees this"
        )
    return extended


def replay_step_preserves_explanation(
    installation: InstallationGraph,
    prefix: Iterable[Operation],
    operation: Operation,
    state: State,
    initial: State,
) -> bool:
    """The §3.3 step lemma, checked executable-style.

    Given σ explaining S and a minimal uninstalled O: O is applicable to S,
    and σ;O explains S;O.  Returns True when both conclusions hold.
    """
    members = set(prefix)
    if not explains(installation, members, state, initial):
        raise ValueError("precondition failed: prefix does not explain state")
    if not is_applicable(installation, operation, state, initial):
        return False
    extended = extend_prefix(installation, members, operation)
    return explains(installation, extended, operation.apply(state), initial)
