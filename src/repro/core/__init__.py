"""The paper's primary contribution, as an executable library.

Modules map one-to-one onto the paper's sections:

======================  =======================================================
Module                  Paper section
======================  =======================================================
``model``               §2.1 system model: variables, values, states, operations
``expr``                expression DSL used to define operations declaratively
``conflict``            §2.2 conflict graphs and Lemma 1
``exposed``             §2.3 exposed variables
``state_graph``         §2.4 state graphs, Lemma 2, conflict state graphs
``installation``        §3.1 installation graphs
``explain``             §3.2–3.3 explainable states, applicability, replay steps
``replay``              §3.4 Theorem 3 (potential recoverability)
``recovery``            §4 the abstract ``recover`` procedure (Figure 6)
``partition``           Theorem 3 applied: component-partitioned recovery
``invariant``           §4.5 the Recovery Invariant checker
``write_graph``         §5 write graphs and Corollary 5
==============================================================================

Everything here is re-exported at the package root (:mod:`repro`).
"""

from repro.core.model import Operation, State, run_sequence, state_sequence
from repro.core.expr import Add, Const, Expr, Var, assign, blind_write, increment
from repro.core.conflict import ConflictGraph
from repro.core.varindex import VariableIndex
from repro.core.exposed import (
    ExposureMemo,
    exposed_variables,
    is_exposed,
    unexposed_variables,
)
from repro.core.state_graph import StateGraph
from repro.core.installation import InstallationGraph
from repro.core.explain import (
    explains,
    find_explaining_prefixes,
    is_applicable,
    is_explainable,
)
from repro.core.replay import is_potentially_recoverable, replay, replay_order
from repro.core.recovery import (
    Log,
    LogRecord,
    RecoveryOutcome,
    RedoDecision,
    recover,
)
from repro.core.partition import (
    VariablePartition,
    partition_operations,
    recover_partitioned,
)
from repro.core.polog import PartialOrderLog, recover_partial
from repro.core.invariant import (
    InvariantReport,
    check_recovery_invariant,
    installed_set,
)
from repro.core.write_graph import WriteGraph, WriteGraphError, WriteNode

__all__ = [
    "Add",
    "ConflictGraph",
    "Const",
    "ExposureMemo",
    "Expr",
    "InstallationGraph",
    "InvariantReport",
    "Log",
    "LogRecord",
    "Operation",
    "PartialOrderLog",
    "RecoveryOutcome",
    "RedoDecision",
    "State",
    "StateGraph",
    "Var",
    "VariableIndex",
    "VariablePartition",
    "WriteGraph",
    "WriteGraphError",
    "WriteNode",
    "assign",
    "blind_write",
    "check_recovery_invariant",
    "explains",
    "exposed_variables",
    "find_explaining_prefixes",
    "increment",
    "installed_set",
    "is_applicable",
    "is_explainable",
    "is_exposed",
    "is_potentially_recoverable",
    "partition_operations",
    "recover",
    "recover_partial",
    "recover_partitioned",
    "replay",
    "replay_order",
    "run_sequence",
    "state_sequence",
    "unexposed_variables",
]
