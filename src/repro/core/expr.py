"""A tiny expression language for defining operations declaratively.

The paper writes operations like ``A: x <- y + 1`` and
``C: <x <- x + 1; y <- y + 1>``.  Modeling the right-hand sides as data
rather than opaque Python callables buys three things:

1. the read set of an operation can be *derived* from its expressions, so
   tests can check that declared read sets match actual data flow;
2. operations are printable, comparable, and hashable, which the log
   manager needs when it serializes logical operations into log records;
3. expressions evaluate deterministically during replay, which is the
   determinism assumption the whole theory rests on.

Only what the paper's examples need is provided: variables, constants,
arithmetic, and a few convenience constructors (:func:`assign`,
:func:`increment`, :func:`blind_write`).  Operation bodies that cannot be
expressed here can still be built from raw callables via
:class:`repro.core.model.Operation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Union

Value = Union[int, float, str, bytes, tuple, frozenset, None]


class Expr:
    """Base class for expression nodes.

    Subclasses are frozen dataclasses, so expressions compare and hash by
    structure.  Operator overloads build arithmetic trees:
    ``Var("x") + 1`` is ``Add(Var("x"), Const(1))``.
    """

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        """Evaluate under an environment mapping variable names to values."""
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """The variables this expression reads."""
        raise NotImplementedError

    # -- operator sugar -------------------------------------------------
    def __add__(self, other: "Expr | Value") -> "Add":
        return Add(self, _lift(other))

    def __radd__(self, other: "Expr | Value") -> "Add":
        return Add(_lift(other), self)

    def __sub__(self, other: "Expr | Value") -> "Sub":
        return Sub(self, _lift(other))

    def __rsub__(self, other: "Expr | Value") -> "Sub":
        return Sub(_lift(other), self)

    def __mul__(self, other: "Expr | Value") -> "Mul":
        return Mul(self, _lift(other))

    def __rmul__(self, other: "Expr | Value") -> "Mul":
        return Mul(_lift(other), self)


def _lift(value: "Expr | Value") -> Expr:
    return value if isinstance(value, Expr) else Const(value)


@dataclass(frozen=True)
class Const(Expr):
    """A literal value."""

    value: Value

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        """The literal value, regardless of environment."""
        return self.value

    def variables(self) -> frozenset[str]:
        """Constants read nothing."""
        return frozenset()

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A reference to a state variable."""

    name: str

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        """Look the variable up in the environment."""
        return env[self.name]

    def variables(self) -> frozenset[str]:
        """A variable reads exactly itself."""
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class _Binary(Expr):
    left: Expr
    right: Expr

    _symbol = "?"
    # Subclasses set `_apply` to a plain staticmethod; it is deliberately
    # not annotated so dataclasses treat it as a class attribute, not a field.
    _apply = staticmethod(lambda a, b: None)

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        return type(self)._apply(self.left.evaluate(env), self.right.evaluate(env))

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} {self._symbol} {self.right})"


@dataclass(frozen=True)
class Add(_Binary):
    _symbol = "+"
    _apply = staticmethod(lambda a, b: a + b)


@dataclass(frozen=True)
class Sub(_Binary):
    _symbol = "-"
    _apply = staticmethod(lambda a, b: a - b)


@dataclass(frozen=True)
class Mul(_Binary):
    _symbol = "*"
    _apply = staticmethod(lambda a, b: a * b)


@dataclass(frozen=True)
class Concat(_Binary):
    """Concatenation for string/bytes/tuple-valued variables."""

    _symbol = "++"
    _apply = staticmethod(lambda a, b: a + b)


# ----------------------------------------------------------------------
# Convenience constructors for the paper's operation shapes
# ----------------------------------------------------------------------

def assign(name: str, target: str, expression: "Expr | Value") -> "Operation":
    """The operation ``name: target <- expression``.

    The paper's operation ``A: x <- y + 1`` is ``assign("A", "x",
    Var("y") + 1)``.  Read set is derived from the expression.
    """
    from repro.core.model import Operation

    expression = _lift(expression)
    return Operation.from_assignments(name, {target: expression})


def blind_write(name: str, target: str, value: Value) -> "Operation":
    """The operation ``name: target <- value`` with an empty read set.

    The paper's ``B: y <- 2`` is ``blind_write("B", "y", 2)``.  Blind
    writes are what make variables unexposed, and are the entire substance
    of physical logging (§6.2).
    """
    return assign(name, target, Const(value))


def increment(name: str, target: str, amount: Value = 1) -> "Operation":
    """The operation ``name: target <- target + amount`` (reads its target)."""
    return assign(name, target, Var(target) + amount)
