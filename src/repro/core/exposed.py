"""Exposed and unexposed variables (§2.3).

Fix a conflict graph C and a subset I of its operations (the operations
considered installed).  A variable ``x`` is **exposed by I** iff

- no operation outside I accesses ``x`` (x already has its final value and
  nothing will regenerate it), or
- some operation outside I accesses ``x`` and a *minimal* such operation
  (in conflict-graph order restricted to the accessors outside I) *reads*
  ``x`` — so the value must be right if the system crashes now.

``x`` is **unexposed** otherwise, i.e. some operation outside I accesses
``x`` and every minimal accessor outside I writes ``x`` without reading it
(a blind write): whatever value ``x`` holds will be overwritten before
anything reads it, so the value is irrelevant.

Note the definition quantifies over *a* minimal accessor.  Distinct
minimal accessors of the same variable are incomparable, and since one of
them could be replayed first, exposure requires only that *some* minimal
accessor reads (the paper's wording); the stricter "all minimal accessors
read" variant is available for comparison as
:func:`strictly_exposed_variables` and coincides whenever accesses to each
variable are totally ordered (which ww/rw/wr conflicts in fact guarantee
for writers; two blind-write-free readers can tie).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.conflict import ConflictGraph
from repro.core.model import Operation


def _accessors_outside(
    graph: ConflictGraph, installed: set[Operation], variable: str
) -> list[Operation]:
    return [
        operation
        for operation in graph.operations
        if operation not in installed and operation.accesses(variable)
    ]


def is_exposed(
    graph: ConflictGraph, installed: Iterable[Operation], variable: str
) -> bool:
    """Is ``variable`` exposed by the installed set (§2.3 definition)?"""
    installed_set = set(installed)
    outside = _accessors_outside(graph, installed_set, variable)
    if not outside:
        return True
    minimal = graph.minimal_operations(outside)
    return any(operation.reads(variable) for operation in minimal)


def is_unexposed(
    graph: ConflictGraph, installed: Iterable[Operation], variable: str
) -> bool:
    """Negation of :func:`is_exposed`."""
    return not is_exposed(graph, installed, variable)


def all_variables(graph: ConflictGraph) -> set[str]:
    """Every variable accessed by any operation in the graph."""
    variables: set[str] = set()
    for operation in graph.operations:
        variables |= operation.variables()
    return variables


def exposed_variables(
    graph: ConflictGraph,
    installed: Iterable[Operation],
    variables: Iterable[str] | None = None,
) -> set[str]:
    """The subset of ``variables`` (default: all accessed) exposed by I."""
    installed_set = set(installed)
    candidates = all_variables(graph) if variables is None else set(variables)
    return {
        variable
        for variable in candidates
        if is_exposed(graph, installed_set, variable)
    }


def unexposed_variables(
    graph: ConflictGraph,
    installed: Iterable[Operation],
    variables: Iterable[str] | None = None,
) -> set[str]:
    """Complement of :func:`exposed_variables` within the candidate set."""
    installed_set = set(installed)
    candidates = all_variables(graph) if variables is None else set(variables)
    return candidates - exposed_variables(graph, installed_set, candidates)


def strictly_exposed_variables(
    graph: ConflictGraph,
    installed: Iterable[Operation],
    variables: Iterable[str] | None = None,
) -> set[str]:
    """The "every minimal accessor reads" variant (see module docstring)."""
    installed_set = set(installed)
    candidates = all_variables(graph) if variables is None else set(variables)
    result: set[str] = set()
    for variable in candidates:
        outside = _accessors_outside(graph, installed_set, variable)
        if not outside:
            result.add(variable)
            continue
        minimal = graph.minimal_operations(outside)
        if all(operation.reads(variable) for operation in minimal):
            result.add(variable)
    return result
