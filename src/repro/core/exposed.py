"""Exposed and unexposed variables (§2.3), variable-indexed.

Fix a conflict graph C and a subset I of its operations (the operations
considered installed).  A variable ``x`` is **exposed by I** iff

- no operation outside I accesses ``x`` (x already has its final value and
  nothing will regenerate it), or
- some operation outside I accesses ``x`` and a *minimal* such operation
  (in conflict-graph order restricted to the accessors outside I) *reads*
  ``x`` — so the value must be right if the system crashes now.

``x`` is **unexposed** otherwise, i.e. some operation outside I accesses
``x`` and every minimal accessor outside I writes ``x`` without reading it
(a blind write): whatever value ``x`` holds will be overwritten before
anything reads it, so the value is irrelevant.

The checks run off the conflict graph's
:class:`~repro.core.varindex.VariableIndex` rather than a full-sequence
scan, so one variable costs O(accessors of that variable outside I).
The index module proves the fact this rests on: the log-order-first
accessor of ``x`` outside I is always minimal, and uniquely minimal when
it writes — so exposure is decided entirely by whether that first
accessor reads.

Note the definition quantifies over *a* minimal accessor.  Distinct
minimal accessors of the same variable are incomparable, and since one of
them could be replayed first, exposure requires only that *some* minimal
accessor reads (the paper's wording); the stricter "all minimal accessors
read" variant is available for comparison as
:func:`strictly_exposed_variables` and is kept on the definitional
``minimal_operations`` path precisely so the tests can confirm the two
coincide on generated graphs (when a minimal accessor writes it is the
unique minimal accessor; reader ties read by definition).

For an *evolving* installed set — the normal-operation audits, where I
grows an operation at a time while the graph is appended to —
:class:`ExposureMemo` caches per-variable verdicts and invalidates them
precisely on the appends and installs that touch the variable.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.conflict import ConflictGraph
from repro.core.model import Operation


def _installed_set(installed: Iterable[Operation]) -> "set[Operation] | frozenset[Operation]":
    """``installed`` as a set, without copying one that already is."""
    if isinstance(installed, (set, frozenset)):
        return installed
    return set(installed)


def _accessors_outside(
    graph: ConflictGraph, installed: "set[Operation] | frozenset[Operation]", variable: str
) -> Iterator[Operation]:
    """Accessors of ``variable`` outside ``installed`` — served from the
    variable index, lazily, with no list materialized per call."""
    return graph.variable_index.accessors_outside(installed, variable)


def is_exposed(
    graph: ConflictGraph, installed: Iterable[Operation], variable: str
) -> bool:
    """Is ``variable`` exposed by the installed set (§2.3 definition)?

    ``installed`` may be any iterable; passing a ``set``/``frozenset``
    avoids a copy.  Cost: O(accessors of ``variable`` outside I).
    """
    installed_set = _installed_set(installed)
    first = graph.variable_index.first_accessor_outside(installed_set, variable)
    return first is None or first.reads(variable)


def is_unexposed(
    graph: ConflictGraph, installed: Iterable[Operation], variable: str
) -> bool:
    """Negation of :func:`is_exposed`."""
    return not is_exposed(graph, installed, variable)


def all_variables(graph: ConflictGraph) -> set[str]:
    """Every variable accessed by any operation in the graph."""
    return set(graph.variable_index.variables())


def exposed_variables(
    graph: ConflictGraph,
    installed: Iterable[Operation],
    variables: Iterable[str] | None = None,
) -> set[str]:
    """The subset of ``variables`` (default: all accessed) exposed by I."""
    installed_set = _installed_set(installed)
    index = graph.variable_index
    candidates = index.variables() if variables is None else variables
    result: set[str] = set()
    for variable in candidates:
        first = index.first_accessor_outside(installed_set, variable)
        if first is None or first.reads(variable):
            result.add(variable)
    return result


def unexposed_variables(
    graph: ConflictGraph,
    installed: Iterable[Operation],
    variables: Iterable[str] | None = None,
) -> set[str]:
    """Complement of :func:`exposed_variables` within the candidate set."""
    installed_set = _installed_set(installed)
    candidates = all_variables(graph) if variables is None else set(variables)
    return candidates - exposed_variables(graph, installed_set, candidates)


def strictly_exposed_variables(
    graph: ConflictGraph,
    installed: Iterable[Operation],
    variables: Iterable[str] | None = None,
) -> set[str]:
    """The "every minimal accessor reads" variant (see module docstring).

    Deliberately kept on the definitional path — materialize the outside
    accessors, take the conflict-graph-minimal ones, quantify over all —
    so it cross-checks the indexed fast path used everywhere else.
    """
    installed_set = _installed_set(installed)
    candidates = all_variables(graph) if variables is None else set(variables)
    result: set[str] = set()
    for variable in candidates:
        outside = list(_accessors_outside(graph, installed_set, variable))
        if not outside:
            result.add(variable)
            continue
        minimal = graph.minimal_operations(outside)
        if all(operation.reads(variable) for operation in minimal):
            result.add(variable)
    return result


class ExposureMemo:
    """Memoized exposure for a conflict graph and an evolving installed set.

    The memo maps variable -> exposure verdict and is invalidated exactly
    when the verdict could change: a graph append touching the variable
    (new accessor ⇒ the first-outside accessor may change) or an
    install/uninstall of an operation touching it (membership of an
    accessor changed).  Everything else — installs of operations that
    never access the variable, appends elsewhere — leaves entries valid,
    so audit loops that re-check all variables after each step pay O(1)
    per untouched variable.
    """

    def __init__(self, graph: ConflictGraph, installed: Iterable[Operation] = ()):
        self.graph = graph
        self._installed: set[Operation] = set(installed)
        self._memo: dict[str, bool] = {}
        graph.subscribe(self._on_append)

    def _on_append(self, operation: Operation, incoming: dict) -> None:
        for variable in operation.read_set:
            self._memo.pop(variable, None)
        for variable in operation.write_set:
            self._memo.pop(variable, None)

    def _invalidate_for(self, operation: Operation) -> None:
        for variable in operation.read_set:
            self._memo.pop(variable, None)
        for variable in operation.write_set:
            self._memo.pop(variable, None)

    # ------------------------------------------------------------------
    # Installed-set maintenance
    # ------------------------------------------------------------------

    @property
    def installed(self) -> frozenset[Operation]:
        """The current installed set (snapshot)."""
        return frozenset(self._installed)

    def install(self, operation: Operation) -> None:
        """Add ``operation`` to I, invalidating only its variables."""
        if operation not in self._installed:
            self._installed.add(operation)
            self._invalidate_for(operation)

    def uninstall(self, operation: Operation) -> None:
        """Remove ``operation`` from I, invalidating only its variables."""
        if operation in self._installed:
            self._installed.discard(operation)
            self._invalidate_for(operation)

    def set_installed(self, operations: Iterable[Operation]) -> None:
        """Replace I wholesale; only the symmetric difference invalidates."""
        new = set(operations)
        for operation in self._installed ^ new:
            self._invalidate_for(operation)
        self._installed = new

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_exposed(self, variable: str) -> bool:
        """Memoized :func:`is_exposed` for the current installed set."""
        verdict = self._memo.get(variable)
        if verdict is None:
            first = self.graph.variable_index.first_accessor_outside(
                self._installed, variable
            )
            verdict = first is None or first.reads(variable)
            self._memo[variable] = verdict
        return verdict

    def is_unexposed(self, variable: str) -> bool:
        """Negation of :meth:`is_exposed`."""
        return not self.is_exposed(variable)

    def exposed_variables(self, variables: Iterable[str] | None = None) -> set[str]:
        """Exposed subset of ``variables`` (default: all accessed)."""
        candidates = (
            self.graph.variable_index.variables() if variables is None else variables
        )
        return {variable for variable in candidates if self.is_exposed(variable)}

    def unexposed_variables(self, variables: Iterable[str] | None = None) -> set[str]:
        """Unexposed subset of ``variables`` (default: all accessed)."""
        candidates = (
            set(self.graph.variable_index.variables())
            if variables is None
            else set(variables)
        )
        return {variable for variable in candidates if not self.is_exposed(variable)}

    def __repr__(self) -> str:
        return (
            f"ExposureMemo(installed={len(self._installed)}, "
            f"memoized={len(self._memo)})"
        )
