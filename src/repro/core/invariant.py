"""The Recovery Invariant (§4.5) as an executable contract checker.

    The set ``operations(log) − redo_set`` induces a prefix of the
    installation graph that explains the state.

The invariant is the paper's central artifact: it is what every component
of a recoverable system — cache manager, log manager, checkpointer, redo
test — conspires to maintain.  :func:`check_recovery_invariant` evaluates
it for a concrete (state, log, checkpoint, redo test) quadruple by running
the recovery procedure against a scratch copy of the state to discover
``redo_set``, then checking the prefix and explanation conditions.

Corollary 4 says that when the invariant holds, ``recover`` terminates in
the state determined by the conflict graph; the checker optionally
verifies that too (``verify_outcome=True``), making it a one-call audit
for recovery-method implementations (the §6 methods are all audited this
way in the tests and benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.conflict import ConflictGraph
from repro.core.exposed import exposed_variables
from repro.core.installation import InstallationGraph
from repro.core.model import Operation, State
from repro.core.recovery import AnalyzeFn, Log, RecoveryOutcome, RedoTest, recover


@dataclass
class InvariantReport:
    """The verdict of one invariant check, with full forensics."""

    holds: bool
    is_prefix: bool
    explains_state: bool
    installed: frozenset[Operation]
    redo_set: frozenset[Operation]
    exposed: frozenset[str]
    mismatched_variables: frozenset[str]
    outcome: RecoveryOutcome | None = None
    recovered_correctly: bool | None = None

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        """A human-readable multi-line summary (used by the example apps)."""
        lines = [
            f"recovery invariant: {'HOLDS' if self.holds else 'VIOLATED'}",
            f"  installed set   : {sorted(op.name for op in self.installed)}",
            f"  redo set        : {sorted(op.name for op in self.redo_set)}",
            f"  prefix of inst. : {self.is_prefix}",
            f"  explains state  : {self.explains_state}",
        ]
        if self.mismatched_variables:
            lines.append(
                f"  exposed vars with wrong values: {sorted(self.mismatched_variables)}"
            )
        if self.recovered_correctly is not None:
            lines.append(f"  recover() reached final state : {self.recovered_correctly}")
        return "\n".join(lines)


def installed_set(log: Log, redo_set: Iterable[Operation]) -> set[Operation]:
    """``operations(log) − redo_set``."""
    return set(log.iter_operations()) - set(redo_set)


def check_recovery_invariant(
    installation: InstallationGraph,
    state: State,
    log: Log,
    initial: State,
    checkpoint: Iterable[Operation] = (),
    redo: RedoTest | None = None,
    analyze: AnalyzeFn | None = None,
    verify_outcome: bool = False,
) -> InvariantReport:
    """Evaluate the Recovery Invariant for a crash-time configuration.

    Runs the recovery procedure on a scratch copy of ``state`` to obtain
    the ``redo_set`` the system *would* choose if it crashed now, then
    checks that the complement induces an installation-graph prefix
    explaining ``state``.  With ``verify_outcome`` the recovered state is
    additionally compared with the conflict graph's final state,
    confirming Corollary 4's conclusion on this instance.
    """
    from repro.core.recovery import always_redo

    redo_test = redo if redo is not None else always_redo
    outcome = recover(state, log, checkpoint=checkpoint, redo=redo_test, analyze=analyze)
    conflict = installation.conflict

    installed = installed_set(log, outcome.redo_set)
    prefix_ok = installation.is_prefix(installed)

    exposed: frozenset[str] = frozenset()
    mismatched: frozenset[str] = frozenset()
    explains_ok = False
    if prefix_ok:
        exposed = frozenset(exposed_variables(conflict, installed))
        determined = installation.determined_state(installed, initial)
        mismatched = frozenset(
            variable for variable in exposed if state[variable] != determined[variable]
        )
        explains_ok = not mismatched

    recovered_ok: bool | None = None
    if verify_outcome:
        final = conflict.final_state(initial)
        variables: set[str] = set()
        for operation in conflict.operations:
            variables |= operation.variables()
        recovered_ok = outcome.state.agrees_with(final, variables)

    return InvariantReport(
        holds=prefix_ok and explains_ok,
        is_prefix=prefix_ok,
        explains_state=explains_ok,
        installed=frozenset(installed),
        redo_set=frozenset(outcome.redo_set),
        exposed=exposed,
        mismatched_variables=mismatched,
        outcome=outcome,
        recovered_correctly=recovered_ok,
    )


def audit_normal_operation(
    operations: list[Operation],
    initial: State,
    snapshots: list[tuple[State, Log, set[Operation]]],
    redo: RedoTest | None = None,
    analyze: AnalyzeFn | None = None,
) -> list[InvariantReport]:
    """Check the invariant at a series of instants of normal operation.

    ``snapshots`` holds (stable state, stable log, checkpoint set) triples
    captured at successive points in an execution — e.g. after every cache
    flush.  The invariant must hold at *every* instant, because a crash can
    happen at any of them (§4.5).  Returns one report per snapshot.

    The snapshot logs of an execution grow monotonically, so one pair of
    incremental graphs is appended to across the instants (Lemma 1 makes
    the left-to-right construction order-safe); only a snapshot whose log
    is *not* an extension of the previous one forces a rebuild.
    ``operations`` documents the full run and is used only as a sanity
    bound on the final snapshot.
    """
    reports = []
    conflict: ConflictGraph | None = None
    installation: InstallationGraph | None = None
    built: list[Operation] = []
    for state, log, checkpoint in snapshots:
        # The log at a snapshot covers only the operations executed so
        # far; the graphs must contain exactly those.
        logged_ops = list(log.operations())
        if (
            conflict is not None
            and len(logged_ops) >= len(built)
            and logged_ops[: len(built)] == built
        ):
            conflict.extend(logged_ops[len(built):])
        else:
            conflict = ConflictGraph(logged_ops)
            installation = InstallationGraph(conflict)
        built = logged_ops
        assert installation is not None
        reports.append(
            check_recovery_invariant(
                installation,
                state,
                log,
                initial,
                checkpoint=checkpoint,
                redo=redo,
                analyze=analyze,
                verify_outcome=True,
            )
        )
    if built and len(built) > len(operations):
        raise ValueError("final snapshot logged more operations than the run")
    return reports
