"""Write graphs (§5): how real systems batch installs.

A write graph is a state graph whose nodes carry an ``installed`` bit,
with the installed nodes forming a prefix.  It starts life as the
installation state graph (one node per operation) and evolves under four
operations, each with the paper's side conditions enforced:

- **install** a node (all predecessors already installed);
- **add an edge** (target uninstalled, graph stays acyclic) — how a cache
  manager adds ordering constraints such as the B-tree careful write;
- **collapse nodes** into one (graph stays acyclic; last-writer-wins on
  writes) — how a cache keeps one copy of a page, and how flushing a page
  installs all operations accumulated on it;
- **remove a write** (only when no uninstalled reader needs the value) —
  the unexposed-variable optimization that shrinks atomic write sets.

Corollary 5 — the state determined by a write-graph prefix is potentially
recoverable — is checked executable-style by :meth:`WriteGraph.audit`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.core.exposed import exposed_variables
from repro.core.explain import explains
from repro.core.expr import Value
from repro.core.installation import InstallationGraph
from repro.core.model import Operation, State
from repro.graphs import CycleError, Dag


class WriteGraphError(ValueError):
    """A write-graph operation's side condition was violated."""


@dataclass
class WriteNode:
    """One write-graph node: operations, pending writes, installed bit."""

    node_id: Hashable
    ops: frozenset[Operation]
    writes: dict[str, Value] = field(default_factory=dict)
    installed: bool = False

    def vars(self) -> set[str]:
        """The variables this node writes."""
        return set(self.writes)

    def reads(self, variable: str) -> bool:
        """Does any operation in this node read ``variable``?"""
        return any(op.reads(variable) for op in self.ops)

    def __str__(self) -> str:
        ops = ",".join(sorted(op.name for op in self.ops))
        writes = ", ".join(f"{k}={v!r}" for k, v in sorted(self.writes.items()))
        flag = "*" if self.installed else ""
        return f"{{{ops}}}{flag}[{writes}]"


class WriteGraph:
    """A write graph tied to the installation graph it was derived from."""

    def __init__(self, installation: InstallationGraph, initial: State):
        self.installation = installation
        self.initial = initial.copy()
        self.dag = Dag()
        self._nodes: dict[Hashable, WriteNode] = {}
        self._fresh = itertools.count()

        state_graph = installation.state_graph(initial)
        for operation in installation.operations:
            node = WriteNode(
                node_id=operation.name,
                ops=frozenset({operation}),
                writes=state_graph.writes(operation.name),
            )
            self._nodes[operation.name] = node
            self.dag.add_node(operation.name)
        for source, target, labels in state_graph.dag.edges():
            self.dag.add_edge(source, target, labels=labels, check_acyclic=False)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def node(self, node_id: Hashable) -> WriteNode:
        """The node with identifier ``node_id`` (KeyError if absent)."""
        return self._nodes[node_id]

    def nodes(self) -> list[WriteNode]:
        """All nodes, in graph insertion order."""
        return [self._nodes[node_id] for node_id in self.dag.nodes()]

    def node_ids(self) -> list[Hashable]:
        """All node identifiers."""
        return self.dag.nodes()

    def node_of(self, operation: Operation) -> WriteNode:
        """The node whose operation set contains ``operation``."""
        for node in self._nodes.values():
            if operation in node.ops:
                return node
        raise KeyError(f"operation {operation.name!r} labels no write-graph node")

    def installed_nodes(self) -> list[WriteNode]:
        """Nodes whose installed bit is set (they form a prefix)."""
        return [node for node in self.nodes() if node.installed]

    def uninstalled_nodes(self) -> list[WriteNode]:
        """Nodes not yet installed."""
        return [node for node in self.nodes() if not node.installed]

    def installed_operations(self) -> set[Operation]:
        """Every operation labeling an installed node."""
        result: set[Operation] = set()
        for node in self.installed_nodes():
            result |= node.ops
        return result

    def minimal_uninstalled_nodes(self) -> list[WriteNode]:
        """Uninstalled nodes whose predecessors are all installed.

        These are the nodes a cache manager may flush next; flushing any
        of them (in any order) respects write-graph order.
        """
        result = []
        for node in self.uninstalled_nodes():
            preds = self.dag.direct_predecessors(node.node_id)
            if all(self._nodes[p].installed for p in preds):
                result.append(node)
        return result

    # ------------------------------------------------------------------
    # The four §5 operations
    # ------------------------------------------------------------------

    def install(self, node_id: Hashable) -> WriteNode:
        """*Install a node*: requires every predecessor already installed."""
        node = self._nodes[node_id]
        for pred in self.dag.direct_predecessors(node_id):
            if not self._nodes[pred].installed:
                raise WriteGraphError(
                    f"cannot install {node_id!r}: predecessor {pred!r} is uninstalled"
                )
        node.installed = True
        return node

    def add_edge(self, source_id: Hashable, target_id: Hashable) -> None:
        """*Add an edge*: target must be uninstalled; graph must stay acyclic."""
        if target_id not in self._nodes or source_id not in self._nodes:
            raise WriteGraphError("add_edge endpoints must be existing nodes")
        if self._nodes[target_id].installed:
            raise WriteGraphError(
                f"cannot add edge into installed node {target_id!r}"
            )
        try:
            self.dag.add_edge(source_id, target_id, labels={"added"})
        except CycleError as exc:
            raise WriteGraphError(str(exc)) from exc

    def collapse(
        self, node_ids: Iterable[Hashable], new_id: Hashable | None = None
    ) -> WriteNode:
        """*Collapse nodes*: merge ``node_ids`` into one node.

        Writes are last-writer-wins among the collapsed set (the §5 rule:
        keep the pair from the node ordered after every other collapsed
        writer of that variable).  The result must be acyclic, and the
        installed bits must still form a prefix — collapsing an installed
        node with an uninstalled *successor-closed* group is how systems
        install; collapsing that would strand an installed node behind an
        uninstalled one is rejected.
        """
        members = [self._nodes[node_id] for node_id in dict.fromkeys(node_ids)]
        if len(members) < 2:
            raise WriteGraphError("collapse requires at least two nodes")
        member_ids = {node.node_id for node in members}

        merged_writes: dict[str, tuple[Hashable, Value]] = {}
        for node in members:
            for variable, value in node.writes.items():
                current = merged_writes.get(variable)
                if current is None:
                    merged_writes[variable] = (node.node_id, value)
                    continue
                if self.dag.has_path(current[0], node.node_id):
                    merged_writes[variable] = (node.node_id, value)
                elif not self.dag.has_path(node.node_id, current[0]):
                    raise WriteGraphError(
                        f"collapsed nodes write {variable!r} but are unordered"
                    )

        merged_ops = frozenset().union(*(node.ops for node in members))
        installed = any(node.installed for node in members)
        if new_id is None:
            new_id = f"collapsed-{next(self._fresh)}"
        if new_id in self._nodes:
            raise WriteGraphError(f"node id {new_id!r} already exists")

        incoming = set()
        outgoing = set()
        for node in members:
            incoming |= self.dag.direct_predecessors(node.node_id) - member_ids
            outgoing |= self.dag.direct_successors(node.node_id) - member_ids

        # Acyclicity: an external node both reachable from the group and
        # reaching into it would close a cycle through the merged node.
        for external in incoming:
            for node in members:
                if self.dag.has_path(node.node_id, external):
                    raise WriteGraphError(
                        f"collapsing {sorted(map(str, member_ids))} would create a cycle "
                        f"through {external!r}"
                    )

        # Installed-prefix preservation, checked BEFORE mutating so a
        # rejected collapse leaves the graph untouched.  Only the case
        # where the merged node comes out installed can break the
        # property: an uninstalled external predecessor of any member
        # would then sit before installed work.
        if installed:
            for external_id, external in self._nodes.items():
                if external_id in member_ids or external.installed:
                    continue
                if any(
                    self.dag.has_path(external_id, node.node_id)
                    for node in members
                ):
                    raise WriteGraphError(
                        "collapse would install work ahead of uninstalled "
                        f"predecessor {external_id!r}; install or include it first"
                    )

        for node in members:
            self.dag.remove_node(node.node_id)
            del self._nodes[node.node_id]
        merged = WriteNode(
            node_id=new_id,
            ops=merged_ops,
            writes={variable: value for variable, (_, value) in merged_writes.items()},
            installed=installed,
        )
        self._nodes[new_id] = merged
        self.dag.add_node(new_id)
        for source in incoming:
            self.dag.add_edge(source, new_id, check_acyclic=False)
        for target in outgoing:
            self.dag.add_edge(new_id, target, check_acyclic=False)

        assert self._installed_bits_form_prefix(), (
            "internal error: pre-validated collapse broke the installed prefix"
        )
        return merged

    def remove_write(self, node_id: Hashable, variable: str) -> None:
        """*Remove a write*: drop ``variable`` from ``writes(node)``.

        Side condition (§5): every node ``m`` reading ``variable`` is
        either installed, or ordered before ``node`` while some node
        following ``node`` blind-writes ``variable`` — i.e. no uninstalled
        reader can ever need the removed value.
        """
        node = self._nodes[node_id]
        if variable not in node.writes:
            raise WriteGraphError(f"node {node_id!r} does not write {variable!r}")
        if node.installed:
            # Removing a write models choosing not to write the variable
            # when the node installs; an installed node's values are
            # already in the stable state and cannot be un-written.
            raise WriteGraphError(
                f"cannot remove a write from installed node {node_id!r}"
            )
        # (b) The removed value must never be needed as the final value:
        # some node ordered after this one must overwrite the variable,
        # either blindly (its replay regenerates the final value without
        # reading) or while already installed (the stable state already
        # holds the later value).
        overwriter = any(
            other.node_id != node_id
            and self.dag.has_path(node_id, other.node_id)
            and (
                other.installed
                or any(op.writes_blindly(variable) for op in other.ops)
            )
            for other in self._nodes.values()
        )
        if not overwriter:
            raise WriteGraphError(
                f"cannot remove write of {variable!r} from {node_id!r}: "
                f"no following node overwrites it, so the value is final"
            )
        # (a) No uninstalled reader may need the removed value.  The node's
        # own read is exempt: once the node installs it is never replayed,
        # and until then the stable value is untouched by this removal.
        for other in self._nodes.values():
            if other.node_id == node_id or not other.reads(variable):
                continue
            if other.installed:
                continue
            if self.dag.has_path(other.node_id, node_id):
                continue  # reads an earlier version; ordered before us
            raise WriteGraphError(
                f"cannot remove write of {variable!r} from {node_id!r}: "
                f"uninstalled node {other.node_id!r} reads it"
            )
        del node.writes[variable]

    # ------------------------------------------------------------------
    # States and audits
    # ------------------------------------------------------------------

    def _installed_bits_form_prefix(self) -> bool:
        installed_ids = {node.node_id for node in self.installed_nodes()}
        return self.dag.is_prefix(installed_ids)

    def determined_state(self, within: Iterable[Hashable] | None = None) -> State:
        """The state determined by the node set ``within`` (default: the
        installed prefix).  ``within`` must be a prefix of the write graph."""
        if within is None:
            members = {node.node_id for node in self.installed_nodes()}
        else:
            members = set(within)
            if not self.dag.is_prefix(members):
                raise WriteGraphError("determined_state requires a write-graph prefix")
        state = self.initial.copy()
        assignments: dict[str, tuple[Hashable, Value]] = {}
        for node_id in members:
            for variable, value in self._nodes[node_id].writes.items():
                current = assignments.get(variable)
                if current is None or self.dag.has_path(current[0], node_id):
                    assignments[variable] = (node_id, value)
        for variable, (_, value) in assignments.items():
            state.set(variable, value)
        return state

    def stable_state(self) -> State:
        """The state determined by the installed prefix — the simulated disk."""
        return self.determined_state()

    def audit(self) -> bool:
        """Corollary 5 check: the installed prefix's operations form an
        installation-graph prefix that explains the stable state."""
        installed_ops = self.installed_operations()
        if not self.installation.is_prefix(installed_ops):
            return False
        return explains(
            self.installation, installed_ops, self.stable_state(), self.initial
        )

    def unexposed_now(self) -> set[str]:
        """Variables currently unexposed by the installed operations."""
        conflict = self.installation.conflict
        installed_ops = self.installed_operations()
        variables: set[str] = set()
        for operation in conflict.operations:
            variables |= operation.variables()
        return variables - exposed_variables(conflict, installed_ops, variables)

    def __repr__(self) -> str:
        return (
            f"WriteGraph(nodes={len(self.dag)}, installed="
            f"{len(self.installed_nodes())}/{len(self.dag)})"
        )
