"""Write graphs (§5): how real systems batch installs — live.

A write graph is a state graph whose nodes carry an ``installed`` bit,
with the installed nodes forming a prefix.  It starts life as the
installation state graph (one node per operation) and evolves under four
operations, each with the paper's side conditions enforced:

- **install** a node (all predecessors already installed);
- **add an edge** (target uninstalled, graph stays acyclic) — how a cache
  manager adds ordering constraints such as the B-tree careful write;
- **collapse nodes** into one (graph stays acyclic; last-writer-wins on
  writes) — how a cache keeps one copy of a page, and how flushing a page
  installs all operations accumulated on it;
- **remove a write** (only when no uninstalled reader needs the value) —
  the unexposed-variable optimization that shrinks atomic write sets.

The graph is maintained *incrementally*: it subscribes to the conflict
graph's append feed, so appending an operation to the log extends the
write graph by one node in O(degree) — node values come from a running
state, edges from the append's finalized edge delta filtered to
installation edges — with no rebuild ever.  Per-variable questions
(remove-write side conditions, the unexposed set) are answered from the
conflict graph's :class:`~repro.core.varindex.VariableIndex` and a
memoized :class:`~repro.core.exposed.ExposureMemo` instead of full
scans, so the structure stays cheap enough to consult on every flush —
which is exactly how :mod:`repro.cache` uses its page-level counterpart.

Corollary 5 — the state determined by a write-graph prefix is potentially
recoverable — is checked executable-style by :meth:`WriteGraph.audit`,
memoized between mutations so continuous auditing costs O(1) per
untouched step.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.core.conflict import WR
from repro.core.exposed import ExposureMemo
from repro.core.expr import Value
from repro.core.installation import InstallationGraph
from repro.core.model import Operation, State
from repro.graphs import CycleError, Dag


class WriteGraphError(ValueError):
    """A write-graph operation's side condition was violated."""


@dataclass
class WriteNode:
    """One write-graph node: operations, pending writes, installed bit."""

    node_id: Hashable
    ops: frozenset[Operation]
    writes: dict[str, Value] = field(default_factory=dict)
    installed: bool = False

    def vars(self) -> set[str]:
        """The variables this node writes."""
        return set(self.writes)

    def reads(self, variable: str) -> bool:
        """Does any operation in this node read ``variable``?"""
        return any(op.reads(variable) for op in self.ops)

    def __str__(self) -> str:
        ops = ",".join(sorted(op.name for op in self.ops))
        writes = ", ".join(f"{k}={v!r}" for k, v in sorted(self.writes.items()))
        flag = "*" if self.installed else ""
        return f"{{{ops}}}{flag}[{writes}]"


class WriteGraph:
    """A live write graph tied to the installation graph it rides.

    Construction absorbs every operation already in the graph, then
    subscribes to the conflict graph's append feed: subsequent appends
    grow the write graph one node at a time with their installation
    edges, so one instance tracks a growing log for its whole life.
    """

    def __init__(self, installation: InstallationGraph, initial: State):
        self.installation = installation
        self.initial = initial.copy()
        self.dag = Dag()
        self._nodes: dict[Hashable, WriteNode] = {}
        self._fresh = itertools.count()
        # operation name -> current node id (updated by collapse).
        self._op_node: dict[str, Hashable] = {}
        # State after every operation appended so far: the source of each
        # new node's write values (replacing a full state-graph rebuild).
        self._running = initial.copy()
        self._memo = ExposureMemo(installation.conflict)
        self._audit_cache: bool | None = None

        for operation in installation.operations:
            self._ingest(
                operation, installation.dag.direct_predecessors(operation.name)
            )
        installation.conflict.subscribe(self._on_append)

    # ------------------------------------------------------------------
    # Incremental maintenance (the append feed)
    # ------------------------------------------------------------------

    def _ingest(self, operation: Operation, sources: Iterable[str]) -> None:
        """Add one operation as a fresh node: evaluate its writes against
        the running state, wire its (already-filtered) installation
        edges, remapping sources through collapses."""
        writes = operation.evaluate(self._running)
        for variable, value in writes.items():
            self._running.set(variable, value)
        node = WriteNode(
            node_id=operation.name,
            ops=frozenset({operation}),
            writes=dict(writes),
        )
        self._nodes[operation.name] = node
        self._op_node[operation.name] = operation.name
        self.dag.add_node(operation.name)
        for source in {self._op_node[name] for name in sources}:
            if source != operation.name:
                self.dag.add_edge(source, operation.name, check_acyclic=False)
        self._audit_cache = None

    def _on_append(self, operation: Operation, incoming: dict[str, set[str]]) -> None:
        """Apply one conflict-graph append: keep the new edges that
        survive §3.1's wr-removal, exactly as the installation graph
        does, but ending at this write graph's current nodes."""
        self._ingest(
            operation,
            (name for name, labels in incoming.items() if labels != {WR}),
        )

    def _synced_memo(self) -> ExposureMemo:
        """The exposure memo, synchronized to the installed prefix (the
        sync invalidates only the symmetric difference, so steady-state
        audits pay O(newly installed operations))."""
        self._memo.set_installed(self.installed_operations())
        return self._memo

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def node(self, node_id: Hashable) -> WriteNode:
        """The node with identifier ``node_id`` (KeyError if absent)."""
        return self._nodes[node_id]

    def nodes(self) -> list[WriteNode]:
        """All nodes, in graph insertion order."""
        return [self._nodes[node_id] for node_id in self.dag.nodes()]

    def node_ids(self) -> list[Hashable]:
        """All node identifiers."""
        return self.dag.nodes()

    def node_of(self, operation: Operation) -> WriteNode:
        """The node whose operation set contains ``operation`` (O(1))."""
        try:
            return self._nodes[self._op_node[operation.name]]
        except KeyError:
            raise KeyError(
                f"operation {operation.name!r} labels no write-graph node"
            ) from None

    def installed_nodes(self) -> list[WriteNode]:
        """Nodes whose installed bit is set (they form a prefix)."""
        return [node for node in self.nodes() if node.installed]

    def uninstalled_nodes(self) -> list[WriteNode]:
        """Nodes not yet installed."""
        return [node for node in self.nodes() if not node.installed]

    def installed_operations(self) -> set[Operation]:
        """Every operation labeling an installed node."""
        result: set[Operation] = set()
        for node in self.installed_nodes():
            result |= node.ops
        return result

    def minimal_uninstalled_nodes(self) -> list[WriteNode]:
        """Uninstalled nodes whose predecessors are all installed.

        These are the nodes a cache manager may flush next; flushing any
        of them (in any order) respects write-graph order.
        """
        result = []
        for node in self.uninstalled_nodes():
            preds = self.dag.direct_predecessors(node.node_id)
            if all(self._nodes[p].installed for p in preds):
                result.append(node)
        return result

    # ------------------------------------------------------------------
    # The four §5 operations
    # ------------------------------------------------------------------

    def install(self, node_id: Hashable) -> WriteNode:
        """*Install a node*: requires every predecessor already installed."""
        node = self._nodes[node_id]
        for pred in self.dag.direct_predecessors(node_id):
            if not self._nodes[pred].installed:
                raise WriteGraphError(
                    f"cannot install {node_id!r}: predecessor {pred!r} is uninstalled"
                )
        node.installed = True
        self._audit_cache = None
        return node

    def add_edge(self, source_id: Hashable, target_id: Hashable) -> None:
        """*Add an edge*: target must be uninstalled; graph must stay acyclic."""
        if target_id not in self._nodes or source_id not in self._nodes:
            raise WriteGraphError("add_edge endpoints must be existing nodes")
        if self._nodes[target_id].installed:
            raise WriteGraphError(
                f"cannot add edge into installed node {target_id!r}"
            )
        try:
            self.dag.add_edge(source_id, target_id, labels={"added"})
        except CycleError as exc:
            raise WriteGraphError(str(exc)) from exc
        self._audit_cache = None

    def collapse(
        self, node_ids: Iterable[Hashable], new_id: Hashable | None = None
    ) -> WriteNode:
        """*Collapse nodes*: merge ``node_ids`` into one node.

        Writes are last-writer-wins among the collapsed set (the §5 rule:
        keep the pair from the node ordered after every other collapsed
        writer of that variable).  The result must be acyclic, and the
        installed bits must still form a prefix — collapsing an installed
        node with an uninstalled *successor-closed* group is how systems
        install; collapsing that would strand an installed node behind an
        uninstalled one is rejected.
        """
        members = [self._nodes[node_id] for node_id in dict.fromkeys(node_ids)]
        if len(members) < 2:
            raise WriteGraphError("collapse requires at least two nodes")
        member_ids = {node.node_id for node in members}

        merged_writes: dict[str, tuple[Hashable, Value]] = {}
        for node in members:
            for variable, value in node.writes.items():
                current = merged_writes.get(variable)
                if current is None:
                    merged_writes[variable] = (node.node_id, value)
                    continue
                if self.dag.has_path(current[0], node.node_id):
                    merged_writes[variable] = (node.node_id, value)
                elif not self.dag.has_path(node.node_id, current[0]):
                    raise WriteGraphError(
                        f"collapsed nodes write {variable!r} but are unordered"
                    )

        merged_ops = frozenset().union(*(node.ops for node in members))
        installed = any(node.installed for node in members)
        if new_id is None:
            new_id = f"collapsed-{next(self._fresh)}"
        if new_id in self._nodes:
            raise WriteGraphError(f"node id {new_id!r} already exists")

        incoming = set()
        outgoing = set()
        for node in members:
            incoming |= self.dag.direct_predecessors(node.node_id) - member_ids
            outgoing |= self.dag.direct_successors(node.node_id) - member_ids

        # Acyclicity: an external node both reachable from the group and
        # reaching into it would close a cycle through the merged node.
        for external in incoming:
            for node in members:
                if self.dag.has_path(node.node_id, external):
                    raise WriteGraphError(
                        f"collapsing {sorted(map(str, member_ids))} would create a cycle "
                        f"through {external!r}"
                    )

        # Installed-prefix preservation, checked BEFORE mutating so a
        # rejected collapse leaves the graph untouched.  Only the case
        # where the merged node comes out installed can break the
        # property: an uninstalled external predecessor of any member
        # would then sit before installed work.
        if installed:
            for external_id, external in self._nodes.items():
                if external_id in member_ids or external.installed:
                    continue
                if any(
                    self.dag.has_path(external_id, node.node_id)
                    for node in members
                ):
                    raise WriteGraphError(
                        "collapse would install work ahead of uninstalled "
                        f"predecessor {external_id!r}; install or include it first"
                    )

        for node in members:
            self.dag.remove_node(node.node_id)
            del self._nodes[node.node_id]
        merged = WriteNode(
            node_id=new_id,
            ops=merged_ops,
            writes={variable: value for variable, (_, value) in merged_writes.items()},
            installed=installed,
        )
        self._nodes[new_id] = merged
        for op in merged_ops:
            self._op_node[op.name] = new_id
        self.dag.add_node(new_id)
        for source in incoming:
            self.dag.add_edge(source, new_id, check_acyclic=False)
        for target in outgoing:
            self.dag.add_edge(new_id, target, check_acyclic=False)
        self._audit_cache = None

        assert self._installed_bits_form_prefix(), (
            "internal error: pre-validated collapse broke the installed prefix"
        )
        return merged

    def remove_write(self, node_id: Hashable, variable: str) -> None:
        """*Remove a write*: drop ``variable`` from ``writes(node)``.

        Side condition (§5): every node ``m`` reading ``variable`` is
        either installed, or ordered before ``node`` while some node
        following ``node`` blind-writes ``variable`` — i.e. no uninstalled
        reader can ever need the removed value.

        Both checks run off the conflict graph's variable index: cost is
        O(accessors of ``variable``), not O(nodes).
        """
        node = self._nodes[node_id]
        if variable not in node.writes:
            raise WriteGraphError(f"node {node_id!r} does not write {variable!r}")
        if node.installed:
            # Removing a write models choosing not to write the variable
            # when the node installs; an installed node's values are
            # already in the stable state and cannot be un-written.
            raise WriteGraphError(
                f"cannot remove a write from installed node {node_id!r}"
            )
        index = self.installation.conflict.variable_index
        # (b) The removed value must never be needed as the final value:
        # some node ordered after this one must blind-overwrite the
        # variable (its replay regenerates the final value without
        # reading).  An *installed* overwriter after this uninstalled
        # node cannot exist — installed nodes form a prefix — so only
        # blind writers need checking.
        overwriter = False
        for op in index.writers(variable):
            if not op.writes_blindly(variable):
                continue
            other_id = self._op_node[op.name]
            if other_id != node_id and self.dag.has_path(node_id, other_id):
                overwriter = True
                break
        if not overwriter:
            raise WriteGraphError(
                f"cannot remove write of {variable!r} from {node_id!r}: "
                f"no following node overwrites it, so the value is final"
            )
        # (a) No uninstalled reader may need the removed value.  The node's
        # own read is exempt: once the node installs it is never replayed,
        # and until then the stable value is untouched by this removal.
        for op in index.readers(variable):
            other_id = self._op_node[op.name]
            if other_id == node_id:
                continue
            other = self._nodes[other_id]
            if other.installed:
                continue
            if self.dag.has_path(other_id, node_id):
                continue  # reads an earlier version; ordered before us
            raise WriteGraphError(
                f"cannot remove write of {variable!r} from {node_id!r}: "
                f"uninstalled node {other_id!r} reads it"
            )
        del node.writes[variable]
        self._audit_cache = None

    # ------------------------------------------------------------------
    # Elision
    # ------------------------------------------------------------------

    def unexposed_now(self) -> set[str]:
        """Variables currently unexposed by the installed operations
        (memoized per variable; see :class:`ExposureMemo`)."""
        return set(self._synced_memo().unexposed_variables())

    def elide_unexposed(self) -> dict[Hashable, set[str]]:
        """Apply remove-write wherever its side conditions permit, for
        every currently-unexposed variable — the §5 optimization a cache
        manager runs before an atomic install to shrink the write set.
        Returns {node_id: removed variables}; nodes whose removals are
        refused (e.g. no blind overwriter yet) are simply skipped.
        """
        removed: dict[Hashable, set[str]] = {}
        for variable in sorted(self.unexposed_now()):
            for node in self.uninstalled_nodes():
                if variable not in node.writes:
                    continue
                try:
                    self.remove_write(node.node_id, variable)
                except WriteGraphError:
                    continue
                removed.setdefault(node.node_id, set()).add(variable)
        return removed

    # ------------------------------------------------------------------
    # States and audits
    # ------------------------------------------------------------------

    def _installed_bits_form_prefix(self) -> bool:
        installed_ids = {node.node_id for node in self.installed_nodes()}
        return self.dag.is_prefix(installed_ids)

    def determined_state(self, within: Iterable[Hashable] | None = None) -> State:
        """The state determined by the node set ``within`` (default: the
        installed prefix).  ``within`` must be a prefix of the write graph."""
        if within is None:
            members = {node.node_id for node in self.installed_nodes()}
        else:
            members = set(within)
            if not self.dag.is_prefix(members):
                raise WriteGraphError("determined_state requires a write-graph prefix")
        state = self.initial.copy()
        assignments: dict[str, tuple[Hashable, Value]] = {}
        for node_id in members:
            for variable, value in self._nodes[node_id].writes.items():
                current = assignments.get(variable)
                if current is None or self.dag.has_path(current[0], node_id):
                    assignments[variable] = (node_id, value)
        for variable, (_, value) in assignments.items():
            state.set(variable, value)
        return state

    def stable_state(self) -> State:
        """The state determined by the installed prefix — the simulated disk."""
        return self.determined_state()

    def audit(self) -> bool:
        """Corollary 5 check: the installed prefix's operations form an
        installation-graph prefix that explains the stable state.

        The verdict is memoized and invalidated by every mutation, and
        the exposure side of ``explains`` runs off the per-variable memo,
        so auditing after each step of a long run is cheap.
        """
        if self._audit_cache is None:
            installed_ops = self.installed_operations()
            if not self.installation.is_prefix(installed_ops):
                self._audit_cache = False
            else:
                determined = self.installation.determined_state(
                    installed_ops, self.initial
                )
                exposed = self._synced_memo().exposed_variables()
                self._audit_cache = self.stable_state().agrees_with(
                    determined, exposed
                )
        return self._audit_cache

    def __repr__(self) -> str:
        return (
            f"WriteGraph(nodes={len(self.dag)}, installed="
            f"{len(self.installed_nodes())}/{len(self.dag)})"
        )
