"""Command-line front door: ``python -m repro <command>``.

Commands
--------
``scenarios``
    Analyze every worked example from the paper (recoverability,
    explaining prefixes) and print a verdict table.
``graphs``
    Print the O,P,Q running example's conflict/installation/write graphs
    (Figures 4, 5, 7) as text.
``demo [method] [--seed N] [--crash-at K]``
    Run a crash/recovery demonstration on a KV engine
    (default: physiological; also logical, physical, generalized).
    ``--seed`` picks the workload; ``--crash-at`` crashes after the
    K-th command (default: end of stream) and then finishes the rest of
    the workload on the recovered incarnation — so any crash point is
    reproducible from the command line.
``audit [method] [--seed N]``
    Run a mixed workload on an engine while auditing the Recovery
    Invariant at every instant via the theory bridge.
``trace [--out FILE] {demo,audit} [args...]``
    Run ``demo`` or ``audit`` with tracing on, then replay the trace
    through :class:`repro.obs.RecoveryTimeline` and print the
    human-readable recovery account.  ``demo`` and ``audit`` also accept
    ``--trace FILE`` directly to write the JSON-lines trace without the
    rendered report.
``logdump <dir|file>``
    Pretty-print binary log segment files (``.wal``) and archives
    (``.arch``): one line per record with LSN, payload type, page,
    encoded size, and CRC status; a torn tail is reported with its byte
    offset and reason, and the exit status is 1 so scripts can gate on
    a clean log (2 = structural error: bad header, missing files).
    ``demo --log-dir DIR`` produces such files.  A sharded deployment
    root (a directory holding ``DEPLOY.json``) dumps every shard's log,
    lines prefixed with the shard directory, same exit-code contract.
    ``--pages`` renders the per-page redo index instead (page → chain
    length, first/last LSN) and verifies every ``.pages`` sidecar
    against a full frame walk (exit 2 on mismatch).
``serve [--port N] [--log-dir DIR] [--shards N] [method]``
    Run the threaded KV server: a session per connection,
    line-delimited JSON protocol, commits coalesced by the
    cross-session group-commit pipeline (``--per-session-force``
    disables the pipeline, for comparison).  ``--shards N`` serves a
    sharded deployment (per-shard WALs under the ``--log-dir`` root;
    an existing ``DEPLOY.json`` root cold-starts, ``--shards`` then
    optional, with a live per-shard recovery progress line).
    ``--lazy-restart`` makes a cold start instant: the server binds
    after analysis alone and pages replay on first access while a
    background thread drains the rest (``health`` shows the backlog).
    Telemetry
    is on by default: per-op latency histograms behind ``stats``, the
    ``health`` op, and (with ``--log-dir``) a crash flight recorder in
    the log root fed by the server's serve span and 1 Hz health
    heartbeats — the engines stay untraced unless ``--trace-ops`` opts
    into the per-operation firehose (a measured double-digit throughput
    tax, see E22).  ``--no-telemetry`` turns all of it off (the E22
    baseline).  Prints ``listening on HOST:PORT`` once bound.
``top --port N [--host H] [--interval S] [--once]``
    A polling terminal dashboard over a live server: per-shard stable
    LSN / pipeline depth / dirty pages, throughput rates, and per-op
    latency quantiles.  ``--once`` renders a single frame and exits
    (tests and CI).
``postmortem <dir> [--ring FILE] [--last N]``
    Read-only forensics after a crash: joins the flight ring's final
    trace records (unclosed spans rendered INTERRUPTED) with the WAL
    tail (last stable LSN per log, torn-tail report) into one account
    of the final moments.  Works on a single log directory or a
    deployment root.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.conflict import ConflictGraph
from repro.core.explain import find_explaining_prefixes, is_explainable
from repro.core.installation import InstallationGraph
from repro.core.model import State
from repro.core.replay import is_potentially_recoverable
from repro.workloads.opgen import scenario_library


def cmd_scenarios(_args) -> int:
    print(f"{'scenario':14s} {'recoverable':12s} explaining prefixes")
    print("-" * 64)
    for name, scenario in scenario_library().items():
        conflict = ConflictGraph(list(scenario.operations))
        installation = InstallationGraph(conflict)
        crashed = State(dict(scenario.crashed_values))
        recoverable = is_potentially_recoverable(conflict, crashed, State())
        prefixes = [
            "{" + ",".join(sorted(op.name for op in prefix)) + "}"
            for prefix in find_explaining_prefixes(installation, crashed, State())
        ]
        verdict = "yes" if recoverable else "NO"
        assert recoverable == is_explainable(installation, crashed, State())
        assert recoverable == scenario.expected_recoverable
        print(f"{name:14s} {verdict:12s} {' '.join(sorted(prefixes)) or '-'}")
    print("\nevery verdict matches the paper (asserted, not just printed).")
    return 0


def cmd_graphs(_args) -> int:
    from repro.core.expr import Var, assign
    from repro.core.state_graph import StateGraph
    from repro.core.write_graph import WriteGraph

    ops = [
        assign("O", "x", Var("x") + 1),
        assign("P", "y", Var("x") + 1),
        assign("Q", "x", Var("x") + 2),
    ]
    conflict = ConflictGraph(ops)
    installation = InstallationGraph(conflict)
    graph = StateGraph.conflict_state_graph(conflict, State())

    print("== conflict graph (Figure 4) ==")
    for a, b, labels in conflict.edges():
        print(f"  {a.name} -> {b.name}  [{','.join(sorted(labels))}]")
    for name in ("O", "P", "Q"):
        print(f"  {name} writes {graph.writes(name)}")

    print("\n== installation graph (Figure 5) ==")
    for a, b in installation.removed_edges():
        print(f"  removed: {a.name} -> {b.name}  (write-read only)")
    for prefix in sorted(
        installation.prefixes(), key=lambda p: (len(p), sorted(op.name for op in p))
    ):
        state = installation.determined_state(prefix, State())
        names = "{" + ",".join(sorted(op.name for op in prefix)) + "}"
        print(f"  prefix {names:10s} determines x={state['x']} y={state['y']}")

    print("\n== write graph after collapsing O and Q (Figure 7) ==")
    wg = WriteGraph(installation, State())
    wg.collapse(["O", "Q"], new_id="{O,Q}")
    for node in wg.nodes():
        print(f"  node {node}")
    for a, b, _ in wg.dag.edges():
        print(f"  {a} -> {b}")
    return 0


def _make_tracer(trace_path: str | None):
    """A file-backed tracer for ``--trace FILE`` (None when not asked for)."""
    if not trace_path:
        return None
    from repro.obs import JsonLinesSink, Tracer

    return Tracer(JsonLinesSink(trace_path))


def cmd_demo(args) -> int:
    from repro.engine import KVDatabase
    from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

    method = args.method
    stream = generate_kv_workload(
        args.seed,
        KVWorkloadSpec(n_operations=60, n_keys=12, put_ratio=0.7, add_ratio=0.15),
    )
    crash_at = len(stream) if args.crash_at is None else args.crash_at
    if not 0 <= crash_at <= len(stream):
        print(f"--crash-at must be in [0, {len(stream)}]", file=sys.stderr)
        return 2
    tracer = _make_tracer(getattr(args, "trace", None))
    log_dir = getattr(args, "log_dir", None)
    db = KVDatabase(
        method=method,
        cache_capacity=4,
        commit_every=3,
        checkpoint_every=20,
        tracer=tracer,
        log_dir=log_dir,
    )
    try:
        db.run(stream[:crash_at])
        print(
            f"{method}: ran {len(db.applied)} mutations "
            f"(seed {args.seed}, crash at {crash_at}); crashing..."
        )
        db.crash_and_recover()
        durable = db.verify_against()
        report = db.report()
        print(
            f"recovered exactly {durable} durable operations "
            f"(replayed {report['method_records_replayed']}, "
            f"skipped {report['method_records_skipped']}, "
            f"log {report['log_bytes']}B)"
        )
        if crash_at < len(stream):
            db.applied = db.applied[:durable]
            db.run(stream[crash_at:])
            db.commit()
            db.verify_against()
            print(
                f"finished the remaining {len(stream) - crash_at} commands on "
                f"the recovered incarnation; state verified"
            )
        if log_dir is not None:
            store = db.method.machine.log.store
            print(
                f"durable log: {store.appends} records staged, "
                f"{store.fsyncs} fsyncs; inspect with "
                f"`python -m repro logdump {log_dir}`"
            )
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace}")
    return 0


def cmd_audit(args) -> int:
    from repro.engine import KVDatabase
    from repro.sim.audit import audited_run, installation_graph_of
    from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

    method = args.method
    if method == "physiological":
        print("note: physiological cannot run cross-key operations; using add/put mix")
        spec = KVWorkloadSpec(n_operations=50, n_keys=8, put_ratio=0.5, add_ratio=0.35)
    else:
        spec = KVWorkloadSpec(
            n_operations=50, n_keys=8, put_ratio=0.35, add_ratio=0.2,
            copyadd_ratio=0.3, delete_ratio=0.0,
        )
    stream = generate_kv_workload(args.seed, spec)
    tracer = _make_tracer(getattr(args, "trace", None))
    db = KVDatabase(
        method=method,
        cache_capacity=4,
        commit_every=2,
        checkpoint_every=12,
        tracer=tracer,
    )
    try:
        audits = audited_run(db, stream)
        violations = [a for a in audits if not a.holds]
        graph = installation_graph_of(db)
        print(
            f"{method}: {len(audits)} instants audited, "
            f"{len(violations)} invariant violations"
        )
        print(
            f"lifted installation graph: {len(graph)} ops, "
            f"{graph.dag.edge_count()} edges, "
            f"{len(graph.removed_edges())} write-read edges removed"
        )
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace}")
    return 1 if violations else 0


def _payload_pages(payload) -> str:
    """The page column for one logdump line ('-' for pageless payloads)."""
    page = getattr(payload, "page_id", None)
    if page is not None:
        return page
    writes = getattr(payload, "writes", None)
    if writes:
        return ",".join(sorted(writes))
    return "-"


def _segment_paths(directory) -> list:
    """Segment files of one log directory, archives (the truncated,
    older prefix) first."""
    from repro.logmgr.filelog import ARCHIVE_SUFFIX, SEGMENT_SUFFIX

    return sorted(directory.glob(f"segment-*{ARCHIVE_SUFFIX}")) + sorted(
        directory.glob(f"segment-*{SEGMENT_SUFFIX}")
    )


def _dump_segment_files(paths, prefix: str = "") -> tuple[int, int] | None:
    """Dump segment files (every line ``prefix``-ed); returns
    (records, torn_tails), or None after printing a structural error."""
    from repro.logmgr.codec import (
        CodecError,
        LazyRecord,
        TornTail,
        decode_file_header,
        iter_record_views,
        verify_seal,
    )
    from repro.logmgr.filelog import ARCHIVE_SUFFIX, _map_buffer, read_seal

    total = torn = 0
    for path in paths:
        buf, close = _map_buffer(path)
        try:
            try:
                base_lsn = decode_file_header(buf)
            except CodecError as exc:
                print(f"{prefix}{path.name}: bad header ({exc})", file=sys.stderr)
                return None
            kind = "archive" if path.suffix == ARCHIVE_SUFFIX else "segment"
            sealed = verify_seal(buf, read_seal(path))
            seal = ", sealed" if sealed is not None else ""
            print(
                f"{prefix}== {path.name} "
                f"({kind}, base_lsn={base_lsn}, {len(buf)}B{seal}) =="
            )
            if sealed is not None:
                views = iter_record_views(buf, end=sealed[0], verify_crc=False)
            else:
                views = iter_record_views(buf)
            try:
                for lsn, lo, hi in views:
                    record = LazyRecord(lsn, bytes(buf[lo:hi]))
                    print(
                        f"{prefix}  lsn={record.lsn:<6d} "
                        f"type={type(record.payload).__name__:<18s} "
                        f"page={_payload_pages(record.payload):<12s} "
                        f"size={record.size_bytes()}B crc=ok"
                    )
                    total += 1
            except TornTail as tear:
                print(
                    f"{prefix}  torn tail at byte {tear.offset}: {tear.reason} "
                    f"({len(buf) - tear.offset}B after the tear are not "
                    f"part of the log)"
                )
                torn += 1
        finally:
            close()
    return total, torn


def _canon_edges(edges) -> list:
    """Multi-page edges in one comparable shape (wire round-trips keep
    tuple/list types, but the dump must not fail a sidecar on that)."""
    return [(lsn, tuple(reads), tuple(writes)) for lsn, reads, writes in edges]


def _index_segment_files(paths, prefix: str = ""):
    """Page-index every segment file by a full frame walk, verifying any
    sidecar against the walk.  Returns ``(index, verified, stale,
    mismatched)`` — or None after printing a structural error.

    The walk is the ground truth: a sidecar that covers the same bytes
    (``base_lsn`` and ``region_len`` agree) must produce the identical
    chains and edges, else it is corrupt and the caller exits 2.  A
    sidecar for *different* bytes is merely stale — the runtime ignores
    those by design (segment grew, sidecar lost the race) — so it is
    reported but not fatal.
    """
    from repro.logmgr.codec import CodecError, decode_file_header, verify_seal
    from repro.logmgr.filelog import _map_buffer, read_pages_blob, read_seal
    from repro.logmgr.pageindex import (
        PageRedoIndex,
        index_buffer,
        parse_page_index,
    )

    index = PageRedoIndex()
    verified = stale = mismatched = 0
    for path in paths:
        buf, close = _map_buffer(path)
        try:
            try:
                base_lsn = decode_file_header(buf)
            except CodecError as exc:
                print(f"{prefix}{path.name}: bad header ({exc})", file=sys.stderr)
                return None
            sealed = verify_seal(buf, read_seal(path))
            if sealed is not None:
                scanned = index_buffer(buf, base_lsn, end=sealed[0], verify_crc=False)
            else:
                scanned = index_buffer(buf, base_lsn)
            blob = read_pages_blob(path)
            sidecar = parse_page_index(blob)
            if sidecar is None and blob is not None:
                stale += 1
                print(
                    f"{prefix}{path.name}: undecodable page-index sidecar "
                    f"(ignored, rebuild scan used)"
                )
            if sidecar is not None:
                if (
                    sidecar.base_lsn != base_lsn
                    or sidecar.region_len != scanned.region_len
                ):
                    stale += 1
                    print(
                        f"{prefix}{path.name}: stale page-index sidecar "
                        f"(ignored, rebuild scan used)"
                    )
                elif sidecar.pages == scanned.pages and _canon_edges(
                    sidecar.edges
                ) == _canon_edges(scanned.edges):
                    verified += 1
                else:
                    mismatched += 1
                    only_sidecar = sorted(set(sidecar.pages) - set(scanned.pages))
                    only_walk = sorted(set(scanned.pages) - set(sidecar.pages))
                    wrong = sorted(
                        p
                        for p in set(sidecar.pages) & set(scanned.pages)
                        if sidecar.pages[p] != scanned.pages[p]
                    )
                    print(
                        f"{prefix}{path.name}: page-index sidecar DISAGREES "
                        f"with the frame walk "
                        f"(sidecar-only={only_sidecar or '-'} "
                        f"walk-only={only_walk or '-'} "
                        f"chains-differ={wrong or '-'})",
                        file=sys.stderr,
                    )
            index.add_segment(scanned)
        finally:
            close()
    return index, verified, stale, mismatched


def _dump_page_index(paths, prefix: str = "") -> int | None:
    """Render one log directory's per-page redo index; returns the
    number of corrupt sidecars, or None after a structural error."""
    counts = _index_segment_files(paths, prefix=prefix)
    if counts is None:
        return None
    index, verified, stale, mismatched = counts
    pages = index.pages()
    if pages:
        print(f"{prefix}{'page':<14} {'frames':>7} {'first_lsn':>10} {'last_lsn':>9}")
        for page_id in pages:
            chain = index.chain(page_id)
            print(
                f"{prefix}{page_id:<14} {len(chain):>7} "
                f"{chain[0][2]:>10} {chain[-1][2]:>9}"
            )
    components = index.components()
    if components:
        groups = sorted(
            {members for members in components.values()},
            key=lambda members: sorted(members),
        )
        for members in groups:
            print(
                f"{prefix}replay component: "
                f"{{{','.join(sorted(members))}}} "
                f"(multi-page records bind these pages)"
            )
    sidecars = f"{verified} sidecar(s) verified against the frame walk"
    if stale:
        sidecars += f", {stale} stale"
    if mismatched:
        sidecars += f", {mismatched} CORRUPT"
    print(
        f"{prefix}{len(pages)} page(s), {index.total_entries()} chain "
        f"entr{'y' if index.total_entries() == 1 else 'ies'}, "
        f"{len(index.edges)} multi-page edge(s) in {len(paths)} file(s); "
        f"{sidecars}"
    )
    return mismatched


def cmd_logdump(args) -> int:
    """Pretty-print binary segment files, torn tails included.

    Streams each file through the shared zero-copy frame walker (the
    same scanner recovery uses): the file is mmapped, sealed segments
    are verified with one sidecar-seal CRC pass, and records decode
    lazily one at a time — a multi-gigabyte segment dumps in O(record)
    memory.

    A directory holding a ``DEPLOY.json`` manifest is a sharded
    deployment root: every shard's log is dumped in shard order, each
    line prefixed with the shard directory name, and damage anywhere in
    the deployment still drives the exit code (1 = torn tail somewhere,
    2 = structural error).

    ``--pages`` renders the per-page redo index instead of the record
    stream: one line per page (chain length, first/last LSN), the
    multi-page replay components, and a verification of every
    ``.pages`` sidecar against a full frame walk of its segment — a
    sidecar that covers the segment's bytes but disagrees with the
    walk is corrupt and the exit status is 2.
    """
    from pathlib import Path

    target = Path(args.path)
    if target.is_dir():
        from repro.shard import is_deployment_root, read_manifest
        from repro.shard.sharded import DeploymentError

        if is_deployment_root(target):
            try:
                manifest = read_manifest(target)
            except DeploymentError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            if args.pages:
                corrupt = 0
                for dirname in manifest["shard_dirs"]:
                    paths = _segment_paths(target / dirname)
                    if not paths:
                        print(f"[{dirname}] no segment files")
                        continue
                    bad = _dump_page_index(paths, prefix=f"[{dirname}] ")
                    if bad is None:
                        return 2
                    corrupt += bad
                return 2 if corrupt else 0
            total = torn = files = 0
            for dirname in manifest["shard_dirs"]:
                paths = _segment_paths(target / dirname)
                if not paths:
                    print(f"[{dirname}] no segment files")
                    continue
                counts = _dump_segment_files(paths, prefix=f"[{dirname}] ")
                if counts is None:
                    return 2
                total += counts[0]
                torn += counts[1]
                files += len(paths)
            tail = f", {torn} torn tail(s)" if torn else ""
            print(
                f"{total} records in {files} file(s) across "
                f"{len(manifest['shard_dirs'])} shard(s){tail}"
            )
            return 1 if torn else 0
        paths = _segment_paths(target)
        if not paths:
            print(f"no segment files in {target}", file=sys.stderr)
            return 2
    elif target.is_file():
        paths = [target]
    else:
        print(f"{target}: no such file or directory", file=sys.stderr)
        return 2
    if args.pages:
        bad = _dump_page_index(paths)
        return 2 if bad is None or bad else 0
    counts = _dump_segment_files(paths)
    if counts is None:
        return 2
    total, torn = counts
    tail = f", {torn} torn tail(s)" if torn else ""
    print(f"{total} records in {len(paths)} file(s){tail}")
    # A torn/corrupt tail is expected after a crash but is something a
    # caller gating on log health must see: report it in the exit code.
    return 1 if torn else 0


def _serve_tracer(log_dir, telemetry: bool):
    """The serve tracer: in-memory ring teed into an on-disk flight ring.

    With telemetry off (or no log directory for the ring file) the
    flight recorder is skipped; with telemetry off entirely the shared
    NULL tracer keeps every instrumentation site at one branch.
    """
    if not telemetry:
        return None
    from repro.obs import FlightRecorderSink, RingBufferSink, TeeSink, Tracer
    from repro.obs.flightrec import FlightRecorder, flight_ring_path

    import os

    ring = RingBufferSink(capacity=4096)
    if not log_dir:
        return Tracer(ring)
    # The log root may not exist yet (fresh create path): the recorder
    # needs its directory before the engine lays down segment files.
    os.makedirs(log_dir, exist_ok=True)
    recorder = FlightRecorder.attach(flight_ring_path(log_dir))
    return Tracer(TeeSink(ring, FlightRecorderSink(recorder)))


def cmd_serve(args) -> int:
    """Run the threaded KV server until interrupted.

    With ``--shards N`` the same front-end serves a sharded deployment:
    ``--log-dir`` then names the deployment *root* — cold-started when
    it already holds a ``DEPLOY.json`` manifest (``--shards`` may be
    omitted; the manifest knows), created fresh otherwise.  A sharded
    cold start prints one progress line per shard as its replay lands.
    """
    import os

    from repro.engine import KVDatabase
    from repro.server import KVServer

    telemetry = not args.no_telemetry
    tracer = _serve_tracer(args.log_dir, telemetry)
    # The engine firehose (a trace record per log append/force/replay) is
    # measurably expensive at serve throughput — E22 puts it at a
    # double-digit commits/s tax — so by default only the *server* gets
    # the tracer (serve span + heartbeat into the flight ring) and the
    # engines run untraced.  --trace-ops opts into the full firehose.
    engine_tracer = tracer if args.trace_ops else None
    shards = args.shards
    if args.log_dir and shards is None:
        # A deployment root is self-describing; serving one without
        # --shards must not silently fall into the single-engine path.
        from repro.shard import is_deployment_root

        if is_deployment_root(args.log_dir):
            shards = 0  # sentinel: cold start, count from the manifest
    if shards is not None:
        from repro.engine import EngineSpec
        from repro.shard import ShardedDatabase, is_deployment_root

        spec = EngineSpec(
            method=args.method,
            commit_pipeline=not args.per_session_force,
            fsync=not args.no_fsync,
        )
        if args.log_dir and is_deployment_root(args.log_dir):

            def shard_ready(result: dict) -> None:
                if "replayed" in result:
                    detail = (
                        f"replayed={result['replayed']} "
                        f"stable_lsn={result['stable_lsn']} "
                        f"torn_tails={result['torn_tails']}"
                    )
                else:  # lazy restart: analysis only, redo still pending
                    detail = f"replay_backlog={result['replay_backlog']}"
                print(
                    f"[shard-{result['shard']:02d}] ready in "
                    f"{result['time_to_ready_s']:.2f}s ({detail})",
                    flush=True,
                )

            db = ShardedDatabase.cold_start(
                args.log_dir,
                tracer=engine_tracer,
                on_progress=shard_ready if telemetry else None,
                progress=telemetry,
                lazy=args.lazy_restart,
            )
            if tracer is not None and db.cold_report is not None:
                tracer.event(
                    "serve.cold_start",
                    wall_s=round(db.cold_report["wall_s"], 3),
                    critical_path_s=round(
                        db.cold_report["critical_path_s"], 3
                    ),
                    lazy=bool(db.cold_report.get("lazy")),
                    shards=[
                        {
                            "shard": r["shard"],
                            "stable_lsn": r.get("stable_lsn", -1),
                            "time_to_ready_s": round(
                                r["time_to_ready_s"], 3
                            ),
                        }
                        for r in db.cold_report["per_shard"]
                    ],
                )
            n_shards = db.keymap.n_shards
            if telemetry and db.cold_report is not None:
                print(
                    f"cold start: wall {db.cold_report['wall_s']:.2f}s, "
                    f"critical path {db.cold_report['critical_path_s']:.2f}s",
                    flush=True,
                )
                if db.cold_report.get("lazy"):
                    print(
                        f"lazy restart: serving with "
                        f"{db.replay_backlog()} page(s) awaiting "
                        f"background replay",
                        flush=True,
                    )
            if shards not in (0, n_shards):
                print(
                    f"--shards {shards} conflicts with the manifest's "
                    f"{n_shards}; serving {n_shards}",
                    file=sys.stderr,
                )
        else:
            db = ShardedDatabase.create(
                root=args.log_dir or None,
                n_shards=max(1, shards),
                spec=spec,
                tracer=engine_tracer,
            )
        print(
            f"sharded: {db.keymap.n_shards} shards, "
            f"keymap seed {db.keymap.seed}, method {args.method}",
            flush=True,
        )
    elif args.log_dir:
        db = KVDatabase.cold_start(
            args.log_dir,
            method=args.method,
            commit_pipeline=not args.per_session_force,
            fsync=not args.no_fsync,
            tracer=engine_tracer,
            lazy=args.lazy_restart,
        )
        if args.lazy_restart and telemetry:
            print(
                f"lazy restart: serving with {db.replay_backlog()} "
                f"page(s) awaiting background replay",
                flush=True,
            )
    else:
        db = KVDatabase(
            method=args.method,
            commit_pipeline=not args.per_session_force,
            tracer=engine_tracer,
        )
    server = KVServer(
        db,
        host=args.host,
        port=args.port,
        session_commit_every=args.commit_every,
        telemetry=telemetry,
        tracer=tracer,
    )
    host, port = server.address
    print(f"listening on {host}:{port} (pid {os.getpid()})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if tracer is not None:
            tracer.close()
    return 0


def cmd_top(args) -> int:
    """Poll a live server and render the terminal dashboard."""
    from repro.server import run_top

    try:
        return run_top(
            args.host,
            args.port,
            interval=args.interval,
            once=args.once,
        )
    except KeyboardInterrupt:
        return 0
    except ConnectionError as exc:
        print(f"cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2


def cmd_postmortem(args) -> int:
    """Render the forensic narrative for a crashed deployment."""
    from pathlib import Path

    from repro.obs.postmortem import collect_postmortem, render_postmortem

    root = Path(args.path)
    if not root.is_dir():
        print(f"{root}: no such directory", file=sys.stderr)
        return 2
    report = collect_postmortem(root, ring_path=args.ring, last_events=args.last)
    print(render_postmortem(report))
    if not report["ok"]:
        print(
            f"{root}: neither segment files nor a flight ring found",
            file=sys.stderr,
        )
        return 2
    return 0


def cmd_trace(args) -> int:
    """Run a traced sub-command, then render the trace as a timeline."""
    from repro.obs import RecoveryTimeline

    sub_argv = [args.traced_command, *args.rest, "--trace", args.out]
    status = main(sub_argv)
    timeline = RecoveryTimeline.from_file(args.out)
    print()
    print("== recovery timeline ==")
    print(timeline.render())
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A Theory of Redo Recovery (SIGMOD 2003), executable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("scenarios", help="analyze the paper's worked examples")
    sub.add_parser("graphs", help="print the O,P,Q graphs (Figures 4/5/7)")
    demo = sub.add_parser("demo", help="crash/recover a KV engine")
    demo.add_argument(
        "method",
        nargs="?",
        default="physiological",
        choices=["logical", "physical", "physiological", "generalized"],
    )
    demo.add_argument(
        "--seed", type=int, default=1, help="workload seed (default: 1)"
    )
    demo.add_argument(
        "--crash-at",
        dest="crash_at",
        type=int,
        default=None,
        metavar="K",
        help="crash after the K-th command (default: end of stream)",
    )
    demo.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSON-lines trace of the whole run to FILE",
    )
    demo.add_argument(
        "--log-dir",
        dest="log_dir",
        default=None,
        metavar="DIR",
        help="put the log on binary segment files in DIR "
        "(inspect them with `repro logdump DIR`)",
    )
    audit = sub.add_parser("audit", help="audit an engine against the theory")
    audit.add_argument(
        "method",
        nargs="?",
        default="logical",
        choices=["logical", "physical", "physiological", "generalized"],
    )
    audit.add_argument(
        "--seed", type=int, default=2, help="workload seed (default: 2)"
    )
    audit.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSON-lines trace of the whole run to FILE",
    )
    trace = sub.add_parser(
        "trace", help="run demo/audit traced and render the recovery timeline"
    )
    trace.add_argument(
        "--out",
        default="trace.jsonl",
        metavar="FILE",
        help="trace file to write (default: trace.jsonl)",
    )
    trace.add_argument(
        "traced_command",
        choices=["demo", "audit"],
        help="the sub-command to run with tracing on",
    )
    trace.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        help="arguments passed through to the sub-command",
    )
    logdump = sub.add_parser(
        "logdump", help="pretty-print binary log segment files"
    )
    logdump.add_argument(
        "path", help="a segment directory, or one .wal/.arch file"
    )
    logdump.add_argument(
        "--pages",
        action="store_true",
        help="render the per-page redo index (chain length, first/last "
        "LSN per page) and verify every .pages sidecar against a full "
        "frame walk (exit 2 on mismatch)",
    )
    serve = sub.add_parser(
        "serve", help="run the threaded KV server (line-delimited JSON)"
    )
    serve.add_argument(
        "method",
        nargs="?",
        default="physiological",
        choices=["logical", "physical", "physiological", "generalized"],
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default: 0 = pick a free one, printed on start)",
    )
    serve.add_argument(
        "--log-dir",
        dest="log_dir",
        default=None,
        metavar="DIR",
        help="durable log segment directory (cold-starts from it; "
        "omit for an in-memory log)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="serve a sharded deployment of N engines (with --log-dir: "
        "the deployment root, cold-started when it holds a DEPLOY.json "
        "manifest, created fresh otherwise)",
    )
    serve.add_argument(
        "--lazy-restart",
        dest="lazy_restart",
        action="store_true",
        help="cold-start lazily: accept connections after analysis "
        "alone, replay each page on first access (and in the "
        "background), instead of replaying the whole log up front — "
        "`health` reports the per-shard replay backlog while it drains",
    )
    serve.add_argument(
        "--commit-every",
        dest="commit_every",
        type=int,
        default=1,
        metavar="N",
        help="per-session auto-commit cadence (default: 1)",
    )
    serve.add_argument(
        "--per-session-force",
        dest="per_session_force",
        action="store_true",
        help="disable the cross-session commit pipeline (each commit "
        "forces the log itself) — the E19 comparison baseline",
    )
    serve.add_argument(
        "--no-fsync",
        dest="no_fsync",
        action="store_true",
        help="skip fsync on the durable log (benchmarks only)",
    )
    serve.add_argument(
        "--no-telemetry",
        dest="no_telemetry",
        action="store_true",
        help="disable latency histograms, tracing, and the flight "
        "recorder (the E22 overhead baseline)",
    )
    serve.add_argument(
        "--trace-ops",
        dest="trace_ops",
        action="store_true",
        help="also trace the engine's per-operation firehose (log "
        "appends, forces, replay) into the flight ring — a measured "
        "double-digit throughput tax; the default traces only the "
        "server's serve span and 1 Hz health heartbeats",
    )
    top = sub.add_parser(
        "top", help="polling terminal dashboard over a live server"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, required=True)
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between polls (default: 2)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit (scripts, CI)",
    )
    postmortem = sub.add_parser(
        "postmortem",
        help="read-only crash forensics: flight ring + WAL tail",
    )
    postmortem.add_argument(
        "path", help="a log directory or sharded deployment root"
    )
    postmortem.add_argument(
        "--ring",
        default=None,
        metavar="FILE",
        help="flight ring file (default: FLIGHT.ring under the root)",
    )
    postmortem.add_argument(
        "--last",
        type=int,
        default=20,
        metavar="N",
        help="how many final trace records to show (default: 20)",
    )
    args = parser.parse_args(argv)
    handlers = {
        "scenarios": cmd_scenarios,
        "graphs": cmd_graphs,
        "demo": cmd_demo,
        "audit": cmd_audit,
        "trace": cmd_trace,
        "logdump": cmd_logdump,
        "serve": cmd_serve,
        "top": cmd_top,
        "postmortem": cmd_postmortem,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
