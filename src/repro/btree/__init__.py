"""A recoverable B-tree exercising generalized LSN-based recovery (§6.4).

The tree stores integer keys with byte payloads across leaf pages plus a
directory page, on the same disk/log/cache substrates as the KV engines.
Leaf splits are logged under one of two disciplines:

- ``"physiological"`` — the conventional approach: the moved half of the
  splitting node is *physically* logged (a whole-page image of the new
  node), followed by single-page records truncating the old node and
  updating the directory.  Each record reads and writes one page, so the
  cache may flush pages in any order.
- ``"generalized"`` — the §6.4 proposal: one multi-page record *reads*
  the old page and *writes* the new page (and the directory), so the
  moved half never enters the log; a second record truncates the old
  page.  The price is a *careful write ordering* obligation — the new
  page must reach disk before the old page is overwritten — which the
  tree registers with the buffer pool as a flush constraint (the write
  graph edge of Figure 8, operationalized).

``unsafe_split_flush`` deliberately violates that ordering (flushing the
truncated old page first); the E6 ablation uses it to demonstrate that
the constraint is load-bearing: crash between the two flushes and the
moved half is gone from both the state and the log.
"""

from repro.btree.tree import BTree, BTreeError

__all__ = ["BTree", "BTreeError"]
