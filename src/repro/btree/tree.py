"""The recoverable multi-level B-tree.

Layout
------
- ``btree-meta`` — one cell, ``root``: the page id of the root node.
  Root changes are logged, so recovery always finds the right root.
- node pages (``page-NNNN``) — a ``__type__`` cell (``"leaf"`` or
  ``"internal"``) plus data cells:

  * leaf: encoded key → payload;
  * internal: separator (encoded key, or ``""`` for the minimum) →
    child page id.  A separator ``s`` routes cells in ``[s, next
    separator)`` to its child.

  Keys are encoded zero-padded (``k000...123``) so lexicographic cell
  order is numeric key order; ``""`` and ``__type__`` sort below every
  encoded key, which lets the generic ``truncate`` / ``split-move``
  page actions split any node without touching its metadata cells.

Splits propagate up the tree; a root split grows the tree by one level.
Every split is logged under one of the two §6.4 disciplines:

- ``"physiological"``: the new node's contents are physically imaged
  into the log (plus single-page records for the truncation and the
  parent/meta updates);
- ``"generalized"``: one multi-page record reads the splitting node and
  writes the new node (and parent/meta), so the moved half never enters
  the log — at the price of the careful write ordering of Figure 8 (new
  page to disk before the old page is overwritten), which the tree
  registers with the buffer pool.

Recovery is LSN-based for both disciplines; multi-page records are
replayed per written page (sound because written pages' actions read
only the record's declared read pages, protected by the constraint).

Deletions remove keys from leaves but never merge nodes (redo recovery
is orthogonal to rebalancing; underflow merging is standard engineering
the theory has nothing new to say about).
"""

from __future__ import annotations

from typing import Iterator

from repro.cache import BufferPool
from repro.logmgr import (
    CheckpointRecord,
    LogEntry,
    MultiPageRedo,
    PageAction,
    PhysicalRedo,
    PhysiologicalRedo,
)
from repro.methods.base import Machine
from repro.storage.page import Page

META_PAGE = "btree-meta"
TYPE_CELL = "__type__"
KEY_WIDTH = 12
FIRST_PAGE = "page-0001"


class BTreeError(RuntimeError):
    """Structural failure (invariant violation, bad discipline, ...)."""


def encode_key(key: int) -> str:
    """Fixed-width key encoding so lexicographic cell order is numeric order."""
    if key < 0 or key >= 10**KEY_WIDTH:
        raise BTreeError(f"key {key} outside supported range")
    return f"k{key:0{KEY_WIDTH}d}"


def decode_key(cell: str) -> int:
    """Inverse of :func:`encode_key`."""
    return int(cell[1:])


def data_cells(page: Page) -> list[tuple[str, object]]:
    """A node's payload cells: everything except the type marker."""
    return [(cell, value) for cell, value in page if cell != TYPE_CELL]


class BTree:
    """A crash-recoverable B-tree of arbitrary depth."""

    def __init__(
        self,
        machine: Machine | None = None,
        fanout: int = 8,
        split_discipline: str = "generalized",
        unsafe_split_flush: bool = False,
    ):
        if split_discipline not in ("generalized", "physiological"):
            raise BTreeError(f"unknown split discipline {split_discipline!r}")
        if fanout < 2:
            raise BTreeError("fanout must be at least 2")
        self.machine = machine if machine is not None else Machine(cache_capacity=32)
        self.fanout = fanout
        self.split_discipline = split_discipline
        self.unsafe_split_flush = unsafe_split_flush
        self.splits = 0
        self.root_splits = 0
        self.records_replayed = 0
        self.records_scanned = 0
        self._ensure_initialized()

    # ------------------------------------------------------------------
    # Bootstrapping
    # ------------------------------------------------------------------

    @property
    def pool(self) -> BufferPool:
        return self.machine.pool

    def _ensure_initialized(self) -> None:
        """Idempotent unlogged bootstrap: an empty root leaf.  A crash
        before anything is durable recovers by re-bootstrapping
        identically."""
        meta = self.pool.get_page(META_PAGE, create=True)
        if meta.get("root") is None:
            self.pool.update(META_PAGE, lambda p: p.put("root", FIRST_PAGE))
        # The first page's type marker comes from this unlogged bootstrap,
        # so restore it whenever missing: the page is invariantly a leaf
        # (splits always move cells into *fresh* pages, never re-type an
        # existing one), making this idempotent and crash-safe.
        first = self.pool.get_page(FIRST_PAGE, create=True)
        if first.get(TYPE_CELL) is None:
            self.pool.update(FIRST_PAGE, lambda p: p.put(TYPE_CELL, "leaf"))

    def root_id(self) -> str:
        """The page id of the current root node."""
        return self.pool.get_page(META_PAGE, create=True).get("root")

    def _node(self, page_id: str) -> Page:
        return self.pool.get_page(page_id, create=True)

    def _node_type(self, page: Page) -> str:
        node_type = page.get(TYPE_CELL)
        if node_type not in ("leaf", "internal"):
            raise BTreeError(f"page {page.page_id!r} has no node type")
        return node_type

    def _allocate_page(self) -> str:
        """Next unused page id, derived by walking the tree (no separate
        durable counter to keep consistent)."""
        highest = 0
        for page_id in self._all_node_ids():
            highest = max(highest, int(page_id[5:]))
        return f"page-{highest + 1:04d}"

    def _all_node_ids(self) -> list[str]:
        result = []
        stack = [self.root_id()]
        while stack:
            page_id = stack.pop()
            result.append(page_id)
            page = self._node(page_id)
            if self._node_type(page) == "internal":
                stack.extend(value for _, value in data_cells(page))
        return result

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _route(self, page: Page, cell: str) -> str:
        """The child covering ``cell`` in an internal node."""
        best = None
        for separator, child in data_cells(page):
            if separator <= cell and (best is None or separator > best[0]):
                best = (separator, child)
        if best is None:
            raise BTreeError(
                f"internal node {page.page_id!r} has no covering separator"
            )
        return best[1]

    def _descend(self, cell: str) -> list[str]:
        """Page ids from the root to the leaf covering ``cell``."""
        path = [self.root_id()]
        while True:
            page = self._node(path[-1])
            if self._node_type(page) == "leaf":
                return path
            path.append(self._route(page, cell))

    def search(self, key: int) -> bytes | None:
        """The payload stored under ``key`` (None if absent)."""
        cell = encode_key(key)
        leaf = self._node(self._descend(cell)[-1])
        return leaf.get(cell)

    def _leaves_in_order(self) -> Iterator[Page]:
        def visit(page_id: str) -> Iterator[Page]:
            page = self._node(page_id)
            if self._node_type(page) == "leaf":
                yield page
                return
            for _, child in sorted(data_cells(page)):
                yield from visit(child)

        yield from visit(self.root_id())

    def range_scan(self, low: int, high: int) -> Iterator[tuple[int, bytes]]:
        """All (key, payload) with low <= key <= high, in key order."""
        lo_cell, hi_cell = encode_key(low), encode_key(high)
        for leaf in self._leaves_in_order():
            for cell, payload in data_cells(leaf):
                if lo_cell <= cell <= hi_cell:
                    yield decode_key(cell), payload

    def items(self) -> dict[int, bytes]:
        """Every (key, payload) pair, as a dict (the oracle-comparison view)."""
        result: dict[int, bytes] = {}
        for leaf in self._leaves_in_order():
            for cell, payload in data_cells(leaf):
                result[decode_key(cell)] = payload
        return result

    def height(self) -> int:
        """Number of levels (1 = a single leaf)."""
        levels = 1
        page = self._node(self.root_id())
        while self._node_type(page) == "internal":
            levels += 1
            page = self._node(sorted(data_cells(page))[0][1])
        return levels

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, key: int, payload: bytes) -> None:
        """Upsert ``key`` with ``payload``, splitting overflowing nodes."""
        cell = encode_key(key)
        path = self._descend(cell)
        leaf_id = path[-1]
        entry = self.machine.log.append(
            PhysiologicalRedo(leaf_id, PageAction("put", (cell, payload)))
        )
        self.pool.update(leaf_id, lambda p: p.put(cell, payload, lsn=entry.lsn))
        self._split_along(path)

    def delete(self, key: int) -> None:
        """Remove ``key`` if present (leaves are never merged)."""
        cell = encode_key(key)
        leaf_id = self._descend(cell)[-1]
        entry = self.machine.log.append(
            PhysiologicalRedo(leaf_id, PageAction("delete", (cell,)))
        )
        self.pool.update(leaf_id, lambda p: p.delete(cell, lsn=entry.lsn))

    def commit(self) -> None:
        """Force the log: all inserts/deletes so far become durable."""
        self.machine.log.flush()

    # ------------------------------------------------------------------
    # Splits (any level, both disciplines)
    # ------------------------------------------------------------------

    def _split_along(self, path: list[str]) -> None:
        """Split overflowing nodes bottom-up along the insert path."""
        for depth in range(len(path) - 1, -1, -1):
            page_id = path[depth]
            page = self._node(page_id)
            if len(data_cells(page)) <= self.fanout:
                return
            parent_id = path[depth - 1] if depth > 0 else None
            self._split_node(page_id, parent_id)

    def _split_node(self, old_id: str, parent_id: str | None) -> None:
        old = self._node(old_id)
        cells = sorted(cell for cell, _ in data_cells(old))
        split_cell = cells[len(cells) // 2]
        node_type = self._node_type(old)
        new_id = self._allocate_page()

        new_root_id = None
        if parent_id is None:
            # Root split: the tree grows a level.
            new_root_id = self._allocate_page()
            if new_root_id == new_id:  # allocate distinct ids
                new_root_id = f"page-{int(new_id[5:]) + 1:04d}"
            self.root_splits += 1

        if self.split_discipline == "generalized":
            self._split_generalized(
                old_id, new_id, split_cell, node_type, parent_id, new_root_id
            )
        else:
            self._split_physiological(
                old_id, new_id, split_cell, node_type, parent_id, new_root_id
            )
        self.splits += 1

    def _parent_actions(
        self,
        old_id: str,
        new_id: str,
        split_cell: str,
        parent_id: str | None,
        new_root_id: str | None,
    ) -> dict[str, tuple[PageAction, ...]]:
        """The separator / root bookkeeping writes a split entails."""
        if parent_id is not None:
            return {parent_id: (PageAction("put", (split_cell, new_id)),)}
        # Root split: a fresh internal root and a meta pointer update.
        return {
            new_root_id: (
                PageAction("set-meta", (TYPE_CELL, "internal")),
                PageAction("put", ("", old_id)),
                PageAction("put", (split_cell, new_id)),
            ),
            META_PAGE: (PageAction("put", ("root", new_root_id)),),
        }

    def _split_physiological(
        self, old_id, new_id, split_cell, node_type, parent_id, new_root_id
    ) -> None:
        """Conventional split: physically image the moved half."""
        old = self._node(old_id)
        moved = {
            cell: value
            for cell, value in data_cells(old)
            if cell >= split_cell
        }
        moved[TYPE_CELL] = node_type
        log = self.machine.log

        image = log.append(PhysicalRedo(new_id, dict(moved), whole_page=True))
        self.pool.update(
            new_id,
            lambda p: (p.cells.update(moved), p.stamp(image.lsn)),
            create=True,
        )
        truncate = log.append(
            PhysiologicalRedo(old_id, PageAction("truncate", (split_cell,)))
        )
        self.pool.update(
            old_id,
            lambda p: PageAction("truncate", (split_cell,)).apply_to(
                p, lsn=truncate.lsn
            ),
        )
        for page_id, actions in self._parent_actions(
            old_id, new_id, split_cell, parent_id, new_root_id
        ).items():
            for action in actions:
                entry = log.append(PhysiologicalRedo(page_id, action))
                self.pool.update(
                    page_id,
                    lambda p, a=action, l=entry.lsn: a.apply_to(p, lsn=l),
                    create=True,
                )
        # No ordering constraints: every record is self-contained.

    def _split_generalized(
        self, old_id, new_id, split_cell, node_type, parent_id, new_root_id
    ) -> None:
        """§6.4 split: read the old node, write the new node — the moved
        half never enters the log."""
        log = self.machine.log
        writes = {
            new_id: (
                PageAction("split-move", (old_id, split_cell)),
                PageAction("set-meta", (TYPE_CELL, node_type)),
            ),
        }
        writes.update(
            self._parent_actions(old_id, new_id, split_cell, parent_id, new_root_id)
        )
        split_record = log.append(
            MultiPageRedo(read_page_ids=(old_id,), writes=writes)
        )
        reader = lambda pid: self.pool.get_page(pid, create=True)
        for page_id, actions in split_record.payload.writes.items():
            def apply_actions(p, actions=actions, lsn=split_record.lsn):
                for action in actions:
                    action.apply_to(p, lsn=lsn, reader=reader)

            self.pool.update(page_id, apply_actions, create=True)
            if page_id == new_id:
                # THE careful write ordering of Figure 8, expressed as the
                # write graph's add-edge: the new page must install before
                # the truncated old page may.  Register while the new
                # page's node is live — a later update in this loop could
                # evict (install) it, and an edge registered against an
                # already-installed generation must not count.
                self.pool.add_flush_constraint(new_id, old_id)

        truncate = log.append(
            PhysiologicalRedo(old_id, PageAction("truncate", (split_cell,)))
        )
        self.pool.update(
            old_id,
            lambda p: PageAction("truncate", (split_cell,)).apply_to(
                p, lsn=truncate.lsn
            ),
        )
        if self.unsafe_split_flush:
            # Ablation hook: do exactly the wrong thing — put the
            # truncated old page on disk first, new page still volatile.
            self.machine.log.flush()
            self.pool.flush_page(old_id, force=True)

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Force the log, install everything (in constraint order), and
        record the redo start point."""
        self.machine.log.flush()
        self.pool.flush_all()
        self.machine.log.append(
            CheckpointRecord(("btree", self.machine.log.next_lsn))
        )
        self.machine.log.flush()

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose the cache and the unforced log tail; the disk survives."""
        self.machine.crash()

    def recover(self) -> None:
        """LSN-test redo over the stable log (both disciplines)."""
        self.machine.reboot_pool()
        self._ensure_initialized()
        log = self.machine.log
        checkpoint_lsn = log.last_stable_checkpoint_lsn
        redo_start = (
            log.entry(checkpoint_lsn).payload.data[1] if checkpoint_lsn >= 0 else 0
        )
        for entry in log.stable_records_from(redo_start):
            self.records_scanned += 1
            self._replay(entry)

    def _replay(self, entry: LogEntry) -> None:
        pool = self.pool
        payload = entry.payload
        if isinstance(payload, PhysiologicalRedo):
            page = pool.get_page(payload.page_id, create=True)
            if page.lsn >= entry.lsn:
                return
            pool.update(
                payload.page_id,
                lambda p: payload.action.apply_to(p, lsn=entry.lsn),
            )
            self.records_replayed += 1
        elif isinstance(payload, PhysicalRedo):
            page = pool.get_page(payload.page_id, create=True)
            if page.lsn >= entry.lsn:
                return

            def reinstall(p, cells=payload.cells, whole=payload.whole_page):
                if whole:
                    p.cells.clear()
                p.cells.update(cells)
                p.stamp(entry.lsn)

            pool.update(payload.page_id, reinstall)
            self.records_replayed += 1
        elif isinstance(payload, MultiPageRedo):
            reader = lambda pid: pool.get_page(pid, create=True)
            replayed_pages = []
            for page_id, actions in payload.writes.items():
                page = pool.get_page(page_id, create=True)
                if page.lsn >= entry.lsn:
                    continue

                def apply_actions(p, actions=actions):
                    for action in actions:
                        action.apply_to(p, lsn=entry.lsn, reader=reader)

                pool.update(page_id, apply_actions)
                replayed_pages.append(page_id)
                # Re-arm the careful write ordering for the recovered
                # incarnation as add-edge, immediately, while this page's
                # write-graph node is still live: a later page's replay can
                # evict (and thereby install) this one, and an edge bound
                # afterwards to an empty obligation node would block the
                # read page forever.
                if page_id.startswith("page-"):
                    for read_id in payload.read_page_ids:
                        if read_id != page_id:
                            pool.add_flush_constraint(page_id, read_id)
            if replayed_pages:
                self.records_replayed += 1

    # ------------------------------------------------------------------
    # Invariants and verification
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Structural soundness across all levels: every node is typed,
        every cell lies in the key interval its ancestors dictate, no
        cell appears twice, and every node (except a lone root leaf)
        respects the fanout bound."""
        seen_cells: set[str] = set()
        seen_pages: set[str] = set()

        def visit(page_id: str, low: str, high: str | None) -> None:
            if page_id in seen_pages:
                raise BTreeError(f"page {page_id!r} reachable twice")
            seen_pages.add(page_id)
            page = self._node(page_id)
            node_type = self._node_type(page)
            entries = sorted(data_cells(page))
            if len(entries) > self.fanout + 1:
                raise BTreeError(
                    f"node {page_id!r} holds {len(entries)} cells "
                    f"(fanout {self.fanout})"
                )
            for cell, value in entries:
                if cell < low or (high is not None and cell >= high):
                    raise BTreeError(
                        f"cell {cell!r} in {page_id!r} outside "
                        f"[{low!r}, {high!r})"
                    )
            if node_type == "leaf":
                for cell, _ in entries:
                    if cell in seen_cells:
                        raise BTreeError(f"cell {cell!r} in two leaves")
                    seen_cells.add(cell)
                return
            if not entries:
                raise BTreeError(f"internal node {page_id!r} is empty")
            if entries[0][0] != low:
                raise BTreeError(
                    f"internal node {page_id!r} lowest separator "
                    f"{entries[0][0]!r} != interval low {low!r}"
                )
            for index, (separator, child) in enumerate(entries):
                upper = entries[index + 1][0] if index + 1 < len(entries) else high
                visit(child, separator, upper)

        visit(self.root_id(), "", None)

    def durable_insert_count(self) -> int:
        """Inserts whose log records are stable (split/bookkeeping records
        excluded; deletes excluded for the insert-only experiment loads)."""
        count = 0
        for entry in self.machine.log.stable_records_from(0):
            if (
                isinstance(entry.payload, PhysiologicalRedo)
                and entry.payload.action.kind == "put"
                and isinstance(entry.payload.action.args[1], bytes)
            ):
                # Leaf inserts carry bytes payloads; separator and meta
                # bookkeeping puts carry page-id strings.
                count += 1
        return count

    def log_bytes(self) -> int:
        """Total bytes appended to the log (the E6 metric)."""
        return self.machine.log.total_bytes()

    def __repr__(self) -> str:
        return (
            f"BTree(discipline={self.split_discipline}, fanout={self.fanout}, "
            f"height={self.height()}, splits={self.splits})"
        )
