"""Crash-anywhere sweeps.

A recovery method is only correct if it recovers from a crash at *every*
instant — §4.5's point that the invariant must hold continuously.  These
harnesses operationalize that: run the workload to instant ``t``, crash,
recover, verify against the durable-prefix oracle, and optionally
continue the workload afterwards to check the recovered incarnation is
fully functional (not just readable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.engine import KVDatabase, VerificationError
from repro.workloads.kv import KVOp


@dataclass
class CrashResult:
    """Outcome of one crash/recover cycle."""

    crash_point: int
    durable_count: int
    recovered: bool
    error: str | None = None
    replayed: int = 0
    scanned: int = 0
    audits: int = 0
    audit_failures: int = 0


def crash_once(
    make_db: Callable[[], KVDatabase],
    stream: Sequence[KVOp],
    crash_point: int,
    continue_after: bool = True,
    audit_every: int | None = None,
) -> CrashResult:
    """Run ``stream[:crash_point]``, crash, recover, verify — then (by
    default) run the rest of the stream and verify again after a final
    clean flush, proving the recovered system is a working system.

    With ``audit_every=N``, the Recovery Invariant (Corollary 5, plus
    the install-scheduler cross-check) is evaluated after every N-th
    pre-crash command via one incremental
    :class:`~repro.sim.audit.AuditTracker` — §4.5's "the invariant must
    hold continuously", enforced during normal operation rather than
    only at the crash point.  Failed audits are counted, not raised, so
    sweeps report them alongside recovery verdicts.
    """
    db = make_db()
    audits = audit_failures = 0
    if audit_every is not None and audit_every > 0:
        from repro.sim.audit import AuditTracker

        tracker = AuditTracker(db.method)
        for index, command in enumerate(stream[:crash_point], start=1):
            db.execute(command)
            if index % audit_every == 0:
                audits += 1
                if not tracker.audit(instant=index):
                    audit_failures += 1
    else:
        db.run(stream[:crash_point])
    db.crash_and_recover()
    # Read the redo-work counters through the metrics registry, the same
    # namespaced path production reporting uses (sim and report() must
    # agree by construction, not by parallel bookkeeping).
    snapshot = db.metrics.snapshot()
    replayed = snapshot["method.records_replayed"]
    scanned = snapshot["method.records_scanned"]
    try:
        durable = db.verify_against()
    except VerificationError as exc:
        return CrashResult(
            crash_point=crash_point,
            durable_count=db.durable_count(),
            recovered=False,
            error=str(exc),
            replayed=replayed,
            scanned=scanned,
            audits=audits,
            audit_failures=audit_failures,
        )
    if continue_after:
        # The recovered incarnation must accept the rest of the workload.
        # Its logical history is the durable prefix plus the remainder.
        surviving = db.applied[:durable] if durable <= len(db.applied) else db.applied
        db.applied = list(surviving)
        db.run(stream[crash_point:])
        # A barrier, not a plain commit: with fsync group-commit the last
        # batch may still be volatile, and the oracle compare below needs
        # every applied operation durable.
        db.sync()
        try:
            db.verify_against()
        except VerificationError as exc:
            return CrashResult(
                crash_point=crash_point,
                durable_count=durable,
                recovered=False,
                error=f"post-recovery run diverged: {exc}",
                replayed=replayed,
                scanned=scanned,
                audits=audits,
                audit_failures=audit_failures,
            )
    return CrashResult(
        crash_point=crash_point,
        durable_count=durable,
        recovered=True,
        replayed=replayed,
        scanned=scanned,
        audits=audits,
        audit_failures=audit_failures,
    )


def crash_sweep(
    make_db: Callable[[], KVDatabase],
    stream: Sequence[KVOp],
    crash_points: Sequence[int] | None = None,
    continue_after: bool = True,
    audit_every: int | None = None,
) -> list[CrashResult]:
    """Crash at every instant (default) or at the given sample of points."""
    if crash_points is None:
        crash_points = range(len(stream) + 1)
    return [
        crash_once(
            make_db,
            stream,
            point,
            continue_after=continue_after,
            audit_every=audit_every,
        )
        for point in crash_points
    ]


def canonical_state(db: KVDatabase) -> dict:
    """A method-agnostic canonical serialization of recovered state.

    Covers everything the durability contract talks about: the visible
    key-value mapping, the durable operation count, the stable LSN, and
    the full disk image (cells and LSN tag of every page — for the
    logical method this includes the shadow pages and the root, so two
    equal states are equal all the way down, not just at the KV surface).
    Used by the cold-start tests to assert the file-backed recovery path
    lands *identically* to the in-memory one.
    """
    machine = db.method.machine
    return {
        "dump": db.method.dump(),
        "durable": db.durable_count(),
        "stable_lsn": machine.log.stable_lsn,
        "disk": {
            page_id: (dict(page.cells), page.lsn)
            for page_id, page in sorted(machine.disk.snapshot().items())
        },
    }


def cold_restart_states(
    db: KVDatabase, log_dir, **cold_kwargs
) -> tuple[dict, dict]:
    """Crash ``db`` and recover it twice — warm and cold — and return
    both canonical states.

    The *warm* path is the ordinary in-memory one: the same Python
    objects survive, ``crash()`` truncates the volatile tail, and
    ``recover()`` replays.  The *cold* path is what a real restart has:
    only the segment files in ``log_dir`` and a copy of the
    crash-surviving disk image; :meth:`KVDatabase.cold_start` rebuilds
    the log manager from the files (torn-tail rule applied) and recovers
    on a second, fully independent database.  Corollary 4 demands these
    agree — the test asserts the returned pair is equal.

    ``cold_kwargs`` are forwarded to :meth:`KVDatabase.cold_start`
    (``n_pages`` and ``method`` default to the warm database's).
    """
    from repro.storage import Disk

    db.crash()
    snapshot = db.method.machine.disk.snapshot()
    db.recover()
    warm = canonical_state(db)
    survivor = Disk()
    for page in snapshot.values():
        survivor.write_page(page)
    cold_kwargs.setdefault("method", db.method_name)
    cold_kwargs.setdefault("n_pages", db.method.n_pages)
    cold_db = KVDatabase.cold_start(log_dir, disk=survivor, **cold_kwargs)
    return warm, canonical_state(cold_db)


def sharded_cold_restart_states(
    deployment, root, processes: int | None = 0
) -> tuple[list[dict], list[dict]]:
    """Crash a whole deployment and recover it twice — warm and cold —
    returning both per-shard canonical-state lists.

    The sharded analogue of :func:`cold_restart_states`: the warm path
    crashes and recovers the live :class:`~repro.shard.ShardedDatabase`
    in place (per-shard recover + quiesce); the cold path hands
    :meth:`~repro.shard.ShardedDatabase.cold_start` only what a real
    restart has — the deployment root (manifest + per-shard segment
    files) and copies of each shard's crash-surviving disk image.
    Theorem 3 at deployment scale demands the lists agree element-wise.

    ``processes`` defaults to 0 (inline recovery) so sweeps stay cheap;
    pass ``None`` for the real spawn-pool fan-out.
    """
    from repro.shard import ShardedDatabase
    from repro.storage import Disk

    deployment.crash()
    survivors = []
    for shard in deployment.shards:
        survivor = Disk()
        for page in shard.method.machine.disk.snapshot().values():
            survivor.write_page(page)
        survivors.append(survivor)
    deployment.recover()
    warm = [canonical_state(shard) for shard in deployment.shards]
    cold = ShardedDatabase.cold_start(root, disks=survivors, processes=processes)
    cold_states = [canonical_state(shard) for shard in cold.shards]
    cold.close()
    return warm, cold_states


def repeated_crashes(
    make_db: Callable[[], KVDatabase],
    stream: Sequence[KVOp],
    crash_points: Sequence[int],
) -> CrashResult:
    """One database surviving several crashes at increasing points —
    recovery must be idempotent and re-crashable."""
    db = make_db()
    done = 0
    for point in sorted(crash_points):
        db.run(stream[done:point])
        done = point
        db.crash_and_recover()
        durable = db.durable_count()
        db.applied = db.applied[:durable]
        try:
            db.verify_against()
        except VerificationError as exc:
            return CrashResult(
                crash_point=point,
                durable_count=durable,
                recovered=False,
                error=str(exc),
            )
    db.run(stream[done:])
    db.sync()
    try:
        durable = db.verify_against()
    except VerificationError as exc:
        return CrashResult(
            crash_point=len(stream), durable_count=db.durable_count(),
            recovered=False, error=str(exc),
        )
    return CrashResult(
        crash_point=len(stream), durable_count=durable, recovered=True
    )
