"""Auditing the recoverable B-tree against the theory, page-granular.

Variables here are *pages* (their value: the cell dict), matching §6's
own granularity.  Each stable log record lifts to abstract operations:

- a single-page record (put/delete/add/truncate/set-meta) lifts to one
  operation that reads and writes its page (the action transforms the
  page's prior contents);
- a whole-page physical image lifts to a blind page write;
- a multi-page record lifts to **one operation per written page**, each
  reading the record's read pages (plus its own page when its actions
  need the prior contents).  This decomposition is legitimate precisely
  because a written page's actions never read the record's *other*
  written pages — the same fact that makes the engine's per-page LSN
  replay sound — and the audit turns that argument into a checked
  invariant: the per-page redo decisions must leave an installed set
  that is an installation-graph prefix explaining the stable disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BTree
from repro.core.conflict import ConflictGraph
from repro.core.exposed import exposed_variables
from repro.core.installation import InstallationGraph
from repro.core.model import Operation, State
from repro.logmgr import (
    CheckpointRecord,
    LogEntry,
    MultiPageRedo,
    PageAction,
    PhysicalRedo,
    PhysiologicalRedo,
)


@dataclass
class BTreeAudit:
    """The page-granular invariant verdict for one instant."""

    holds: bool
    is_prefix: bool
    explains_state: bool
    operations: int
    redo_count: int
    detail: str = ""

    def __bool__(self) -> bool:
        return self.holds


def _interpret(actions: tuple[PageAction, ...], reads: dict, page_id: str) -> dict:
    """Apply page actions functionally: reads maps page ids to cell
    dicts; returns the written page's new cell dict."""
    cells = dict(reads.get(page_id) or {})
    for action in actions:
        if action.kind in ("put", "set-meta"):
            cell, value = action.args
            cells[cell] = value
        elif action.kind == "delete":
            (cell,) = action.args
            cells.pop(cell, None)
        elif action.kind == "add":
            cell, delta = action.args
            cells[cell] = (cells.get(cell) or 0) + delta
        elif action.kind == "truncate":
            (split_key,) = action.args
            cells = {c: v for c, v in cells.items() if c < split_key}
        elif action.kind == "split-move":
            source_page_id, split_key = action.args
            source = reads.get(source_page_id) or {}
            cells = {c: v for c, v in source.items() if c >= split_key}
        else:
            raise ValueError(f"unliftable B-tree action {action.kind!r}")
    return cells


def _read_pages_of(actions: tuple[PageAction, ...], page_id: str) -> set[str]:
    """The pages these actions actually read, derived per action.

    Incremental actions (put/delete/add/truncate/set-meta) read the
    written page's prior state; a leading split-move replaces the
    contents wholesale (blind for the written page) and reads its source
    page instead.  Deriving this per action — rather than handing every
    written page the record's whole read set — keeps the lifted graph
    free of spurious read-write edges.
    """
    reads: set[str] = set()
    for action in actions:
        if action.kind == "split-move":
            reads.add(action.args[0])
        elif action.kind == "copyfrom":
            reads.add(action.args[0])
    # The page's own prior state is read unless the first action is a
    # wholesale replacement (split-move clears before filling).
    if not (actions and actions[0].kind == "split-move"):
        reads.add(page_id)
    return reads


def lift_btree_log(entries: list[LogEntry]) -> tuple[list[Operation], dict]:
    """Lift stable records to page-granular operations.

    Returns the operations plus a map lsn -> list of (operation, page_id)
    for the per-page redo bookkeeping.
    """
    operations: list[Operation] = []
    by_lsn: dict[int, list[tuple[Operation, str]]] = {}

    def make(name, read_pages, page_id, actions):
        read_set = frozenset(read_pages)

        def compute(reads, actions=actions, page_id=page_id):
            return {page_id: _interpret(actions, reads, page_id)}

        return Operation(
            name=name,
            read_set=read_set,
            write_set=frozenset({page_id}),
            compute=compute,
        )

    for entry in entries:
        payload = entry.payload
        if isinstance(payload, CheckpointRecord):
            continue
        if isinstance(payload, PhysiologicalRedo):
            op = make(
                f"L{entry.lsn}",
                {payload.page_id},
                payload.page_id,
                (payload.action,),
            )
            operations.append(op)
            by_lsn[entry.lsn] = [(op, payload.page_id)]
        elif isinstance(payload, PhysicalRedo):
            cells = dict(payload.cells)

            def blind(reads, cells=cells, page_id=payload.page_id):
                return {page_id: dict(cells)}

            op = Operation(
                name=f"L{entry.lsn}",
                read_set=frozenset(),
                write_set=frozenset({payload.page_id}),
                compute=blind,
            )
            operations.append(op)
            by_lsn[entry.lsn] = [(op, payload.page_id)]
        elif isinstance(payload, MultiPageRedo):
            group = []
            for page_id, actions in payload.writes.items():
                reads = _read_pages_of(actions, page_id)
                op = make(f"L{entry.lsn}.{page_id}", reads, page_id, actions)
                operations.append(op)
                group.append((op, page_id))
            by_lsn[entry.lsn] = group
        else:
            raise ValueError(f"unliftable record {type(payload).__name__}")
    return operations, by_lsn


def audit_btree(tree: BTree) -> BTreeAudit:
    """Evaluate the Recovery Invariant for the tree's current stable
    configuration (disk + stable log + per-page LSN redo decisions)."""
    entries = tree.machine.log.entries(volatile=False)
    operations, by_lsn = lift_btree_log(entries)
    conflict = ConflictGraph(operations)
    installation = InstallationGraph(conflict)

    disk = tree.machine.disk

    def page_lsn(page_id: str) -> int:
        return disk.read_page(page_id).lsn if disk.has_page(page_id) else -1

    redo_start = 0
    for entry in entries:
        if isinstance(entry.payload, CheckpointRecord):
            redo_start = entry.payload.data[1]

    installed: list[Operation] = []
    redo_count = 0
    for lsn, group in by_lsn.items():
        for op, page_id in group:
            if lsn < redo_start or page_lsn(page_id) >= lsn:
                installed.append(op)
            else:
                redo_count += 1

    # The initial state is the unlogged idempotent bootstrap (§-free by
    # design: recovery recreates it identically), and a page absent from
    # disk holds its initial value — states are total functions.
    from repro.btree.tree import FIRST_PAGE, META_PAGE, TYPE_CELL

    initial = State(default=None)
    initial.set(META_PAGE, {"root": FIRST_PAGE})
    initial.set(FIRST_PAGE, {TYPE_CELL: "leaf"})

    stable = initial.copy()
    for page in disk.pages():
        stable.set(page.page_id, dict(page.cells))

    prefix_ok = installation.is_prefix(installed)
    explains_ok = False
    detail = ""
    if prefix_ok:
        determined = installation.determined_state(installed, initial)
        exposed = exposed_variables(conflict, installed)
        mismatched = sorted(
            page_id
            for page_id in exposed
            if (stable[page_id] or {}) != (determined[page_id] or {})
        )
        explains_ok = not mismatched
        if mismatched:
            detail = f"exposed pages with wrong stable contents: {mismatched}"
    else:
        detail = "installed per-page operations do not form a prefix"

    return BTreeAudit(
        holds=prefix_ok and explains_ok,
        is_prefix=prefix_ok,
        explains_state=explains_ok,
        operations=len(operations),
        redo_count=redo_count,
        detail=detail,
    )
