"""Auditing a live engine against the theory — the bridge module.

The §6 arguments were checked abstractly in :mod:`repro.core`; this
module checks them *against the running engines*.  At any instant of
normal operation it:

1. lifts the engine's **stable log records** to abstract operations
   (variables = keys) — and here the disciplines genuinely diverge:
   a physical record lifts to a *blind* write (the result was computed
   before logging), while logical and physiological ``add`` records lift
   to read-modify-writes, so the *same* workload yields different
   conflict and installation graphs under different methods;
2. reconstructs the engine's **stable model state** (what recovery would
   start from: disk pages, or the shadow store's current directory);
3. simulates the engine's **redo decision** per record (checkpoint
   cut-off, pointer LSN, or page-LSN test against the disk image);
4. evaluates the **Recovery Invariant**: the not-redone operations must
   induce an installation-graph prefix explaining the stable state.

`audit_instant` is the single-instant check; `audited_run` executes a
workload calling it after every command.  Because the engines' caches,
evictions, WAL forces, checkpoints, and group commits all run for real,
a bug in any of them shows up as a flagged instant — this is the
"recovery checker" use of the theory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.conflict import ConflictGraph
from repro.core.exposed import ExposureMemo
from repro.core.installation import InstallationGraph
from repro.core.model import Operation, State
from repro.engine import KVDatabase
from repro.logmgr import (
    CheckpointRecord,
    LogEntry,
    LogicalRedo,
    MultiPageRedo,
    PhysicalRedo,
    PhysiologicalRedo,
)
from repro.methods import GeneralizedKV, LogicalKV, PhysicalKV, PhysiologicalKV
from repro.workloads.kv import KVOp


class AuditError(AssertionError):
    """A record could not be lifted to the abstract model."""


@dataclass
class InstantAudit:
    """The invariant verdict at one instant of normal operation."""

    instant: int
    stable_records: int
    redo_count: int
    holds: bool
    is_prefix: bool
    explains_state: bool
    scheduler_ok: bool = True
    detail: str = ""

    def __bool__(self) -> bool:
        return self.holds


# ----------------------------------------------------------------------
# Lifting log records to abstract operations
# ----------------------------------------------------------------------

def _lift_record(entry: LogEntry) -> Operation | None:
    """The abstract operation a stable log record denotes (None for
    checkpoint records, which are not operations)."""
    name = f"L{entry.lsn}"
    payload = entry.payload

    if isinstance(payload, CheckpointRecord):
        return None

    if isinstance(payload, PhysicalRedo):
        if payload.whole_page:
            raise AuditError(
                "whole-page physical images mix per-key and per-page "
                "granularity; audit put/add workloads (no deletes) instead"
            )
        cells = dict(payload.cells)
        return Operation(
            name=name,
            read_set=frozenset(),
            write_set=frozenset(cells),
            compute=lambda reads, cells=cells: dict(cells),
        )

    if isinstance(payload, LogicalRedo):
        kind, key, value = payload.description
        if kind == "kv-put":
            return Operation(
                name=name,
                read_set=frozenset(),
                write_set=frozenset({key}),
                compute=lambda reads, key=key, value=value: {key: value},
            )
        if kind == "kv-add":
            return Operation(
                name=name,
                read_set=frozenset({key}),
                write_set=frozenset({key}),
                compute=lambda reads, key=key, value=value: {
                    key: (reads[key] or 0) + value
                },
            )
        if kind == "kv-copyadd":
            src, delta = value
            return Operation(
                name=name,
                read_set=frozenset({src}),
                write_set=frozenset({key}),
                compute=lambda reads, key=key, src=src, delta=delta: {
                    key: (reads[src] or 0) + delta
                },
            )
        if kind == "kv-delete":
            return Operation(
                name=name,
                read_set=frozenset(),
                write_set=frozenset({key}),
                compute=lambda reads, key=key: {key: None},
            )
        raise AuditError(f"unknown logical record {kind!r}")

    if isinstance(payload, MultiPageRedo):
        operations = []
        for page_id, actions in payload.writes.items():
            for action in actions:
                if action.kind != "copyfrom":
                    raise AuditError(
                        f"unliftable multi-page action {action.kind!r} "
                        "(KV audits cover copyfrom records; B-tree splits "
                        "work at page granularity)"
                    )
                _, src, dst, delta = action.args
                operations.append((src, dst, delta))
        if len(operations) != 1:
            raise AuditError("expected exactly one copyfrom per KV record")
        src, dst, delta = operations[0]
        return Operation(
            name=name,
            read_set=frozenset({src}),
            write_set=frozenset({dst}),
            compute=lambda reads, src=src, dst=dst, delta=delta: {
                dst: (reads[src] or 0) + delta
            },
        )

    if isinstance(payload, PhysiologicalRedo):
        action = payload.action
        if action.kind == "copycell":
            dst, src, delta = action.args
            return Operation(
                name=name,
                read_set=frozenset({src}),
                write_set=frozenset({dst}),
                compute=lambda reads, src=src, dst=dst, delta=delta: {
                    dst: (reads[src] or 0) + delta
                },
            )
        if action.kind == "put":
            key, value = action.args
            return Operation(
                name=name,
                read_set=frozenset(),
                write_set=frozenset({key}),
                compute=lambda reads, key=key, value=value: {key: value},
            )
        if action.kind == "add":
            key, delta = action.args
            return Operation(
                name=name,
                read_set=frozenset({key}),
                write_set=frozenset({key}),
                compute=lambda reads, key=key, delta=delta: {
                    key: (reads[key] or 0) + delta
                },
            )
        if action.kind == "delete":
            (key,) = action.args
            return Operation(
                name=name,
                read_set=frozenset(),
                write_set=frozenset({key}),
                compute=lambda reads, key=key: {key: None},
            )
        raise AuditError(f"unliftable page action {action.kind!r}")

    raise AuditError(f"unliftable record type {type(payload).__name__}")


# ----------------------------------------------------------------------
# Reconstructing the stable model state
# ----------------------------------------------------------------------

def _stable_model_state(method) -> State:
    """The key-value state recovery would start from."""
    state = State(default=None)
    if isinstance(method, LogicalKV):
        for page_id in method.shadow.current_page_ids():
            for cell, value in method.shadow.read_current(page_id):
                state.set(cell, value)
        return state
    for page in method.machine.disk.pages():
        if page.page_id.startswith("data"):
            for cell, value in page:
                state.set(cell, value)
    return state


# ----------------------------------------------------------------------
# Simulating the redo decision
# ----------------------------------------------------------------------

def _redo_lsns(method, entries: Sequence[LogEntry]) -> set[int]:
    """The LSNs the method's recovery would replay, given the current
    stable state — mirroring each §6 recovery procedure exactly."""
    if isinstance(method, LogicalKV):
        cut = method.shadow.checkpoint_lsn()
        return {
            e.lsn
            for e in entries
            if e.lsn > cut and not isinstance(e.payload, CheckpointRecord)
        }
    if isinstance(method, PhysicalKV):
        start = 0
        for entry in entries:
            if isinstance(entry.payload, CheckpointRecord):
                start = entry.lsn + 1
        return {
            e.lsn
            for e in entries
            if e.lsn >= start and not isinstance(e.payload, CheckpointRecord)
        }
    if isinstance(method, (PhysiologicalKV, GeneralizedKV)):
        disk = method.machine.disk

        def page_lsn(page_id: str) -> int:
            return disk.read_page(page_id).lsn if disk.has_page(page_id) else -1

        # The installed set is modeled by the pure page-LSN test: a
        # record's effect is on disk iff its page's stable LSN covers it.
        # The analysis pass's redo_start is deliberately NOT applied
        # here: it is a *scan* optimization, sound because everything
        # below it replays as a no-op or is already reflected — but
        # flush elision can leave a net-identity window below redo_start
        # whose records are individually unreflected (the disk keeps the
        # pre-window image and LSN).  Treating those as installed would
        # pick a witness prefix whose determined state disagrees with
        # the disk mid-window; the page-LSN cut is the prefix whose
        # determined state the disk actually holds.
        chosen = set()
        for entry in entries:
            if isinstance(entry.payload, PhysiologicalRedo):
                if page_lsn(entry.payload.page_id) < entry.lsn:
                    chosen.add(entry.lsn)
            elif isinstance(entry.payload, MultiPageRedo):
                if any(
                    page_lsn(page_id) < entry.lsn
                    for page_id in entry.payload.writes
                ):
                    chosen.add(entry.lsn)
        return chosen
    raise AuditError(f"no redo model for {type(method).__name__}")


# ----------------------------------------------------------------------
# Cross-checking the buffer pool's install scheduler
# ----------------------------------------------------------------------

def _scheduler_cross_check(method) -> tuple[bool, str]:
    """Agree the engine's §5 install scheduler with the cache it governs.

    Three obligations: the scheduler's own structural invariants hold
    (live index consistent, edges symmetric, graph acyclic); the pages
    with live pending writes are exactly the dirty LSN-stamped frames
    (the live write graph *is* the dirty page table); and every recLSN is
    at most its page's current LSN (a recLSN above the page LSN would let
    analysis start past updates the page still carries).
    """
    pool = method.machine.pool
    scheduler = getattr(pool, "scheduler", None)
    if scheduler is None:
        return True, ""
    problems = scheduler.self_check()
    if problems:
        return False, f"scheduler self-check failed: {problems}"
    dirty = {
        page.page_id: page.lsn
        for page in pool
        if pool.is_dirty(page.page_id) and page.lsn >= 0
    }
    rec_lsns = scheduler.rec_lsns()
    if set(dirty) != set(rec_lsns):
        return False, (
            f"dirty frames {sorted(dirty)} disagree with scheduler "
            f"pending pages {sorted(rec_lsns)}"
        )
    for page_id, rec_lsn in rec_lsns.items():
        if rec_lsn > dirty[page_id]:
            return False, (
                f"recLSN {rec_lsn} of {page_id!r} exceeds its page LSN "
                f"{dirty[page_id]}"
            )
    return True, ""


# ----------------------------------------------------------------------
# The audit itself
# ----------------------------------------------------------------------

class AuditTracker:
    """Incremental audit state for one engine across many instants.

    The audit loops re-evaluate the invariant after every command, but
    between consecutive instants the stable log only *grows* — so the
    tracker keeps an LSN watermark and lifts just the newly stable
    records into an incrementally maintained conflict/installation graph
    pair (Lemma 1 makes the left-to-right appends order-safe).  An
    :class:`~repro.core.exposed.ExposureMemo` rides the same graph: the
    installed set between instants changes only by the records the redo
    decision flipped, and the memo invalidates exactly the variables
    those records touch.  One audit therefore costs O(new records +
    changed verdicts) instead of rebuilding both graphs from the whole
    log.

    The tracker accepts any §6 method engine; :class:`KVDatabase` wraps
    one per database (``track_theory=True`` keeps it synchronized during
    normal operation).  If the log head ever moves (truncation, media
    replacement) the tracker quietly rebuilds from scratch — the
    watermark discipline assumes an append-only stable log.
    """

    def __init__(self, method) -> None:
        self.method = method
        self._reset()

    def _reset(self) -> None:
        self.conflict = ConflictGraph()
        self.installation = InstallationGraph(self.conflict)
        self.memo = ExposureMemo(self.conflict)
        self._by_lsn: dict[int, Operation] = {}
        self._watermark = -1
        self._head_lsn: int | None = None

    def sync(self) -> list[LogEntry]:
        """Lift records that became stable since the last call; returns
        the full stable entry list for the redo simulation."""
        entries = self.method.machine.log.stable_entries()
        head = entries[0].lsn if entries else None
        if self._head_lsn is not None and head != self._head_lsn:
            self._reset()
        self._head_lsn = head
        for entry in entries:
            if entry.lsn <= self._watermark:
                continue
            lifted = _lift_record(entry)
            if lifted is not None:
                self.conflict.append(lifted)
                self._by_lsn[entry.lsn] = lifted
            self._watermark = entry.lsn
        return entries

    def audit(self, instant: int = -1) -> InstantAudit:
        """Evaluate the Recovery Invariant for the engine right now."""
        entries = self.sync()
        redo = _redo_lsns(self.method, entries)
        installed = [
            op for lsn, op in self._by_lsn.items() if lsn not in redo
        ]

        initial = State(default=None)
        stable = _stable_model_state(self.method)

        prefix_ok = self.installation.is_prefix(installed)
        explains_ok = False
        detail = ""
        if prefix_ok:
            determined = self.installation.determined_state(installed, initial)
            self.memo.set_installed(installed)
            mismatched = sorted(
                variable
                for variable in self.memo.exposed_variables()
                if stable[variable] != determined[variable]
            )
            explains_ok = not mismatched
            if mismatched:
                detail = f"exposed variables with wrong stable values: {mismatched}"
        else:
            detail = "installed set is not an installation-graph prefix"

        scheduler_ok, scheduler_detail = _scheduler_cross_check(self.method)
        if scheduler_detail:
            detail = f"{detail}; {scheduler_detail}" if detail else scheduler_detail

        return InstantAudit(
            instant=instant,
            stable_records=len(self._by_lsn),
            redo_count=len(redo),
            holds=prefix_ok and explains_ok and scheduler_ok,
            is_prefix=prefix_ok,
            explains_state=explains_ok,
            scheduler_ok=scheduler_ok,
            detail=detail,
        )


def audit_instant(db: KVDatabase, instant: int = -1) -> InstantAudit:
    """Evaluate the Recovery Invariant for ``db`` right now.

    One-shot form: reuses the database's live tracker when it keeps one
    (``track_theory=True``), otherwise builds graphs for this instant
    only.
    """
    tracker = getattr(db, "_theory_tracker", None) or AuditTracker(db.method)
    return tracker.audit(instant)


def audited_run(
    db: KVDatabase,
    stream: Sequence[KVOp],
    audit_every: int = 1,
) -> list[InstantAudit]:
    """Run ``stream`` on ``db``, auditing after every ``audit_every``-th
    command (plus once at the start and once at the end).

    One :class:`AuditTracker` carries the graphs across all instants, so
    the per-instant cost tracks the commands executed since the previous
    audit, not the whole history.
    """
    tracker = AuditTracker(db.method)
    audits = [tracker.audit(instant=0)]
    for index, command in enumerate(stream, start=1):
        db.execute(command)
        if index % audit_every == 0:
            audits.append(tracker.audit(instant=index))
    db.commit()
    audits.append(tracker.audit(instant=len(stream)))
    return audits


@dataclass
class DeploymentAudit:
    """The Recovery Invariant verdict for a whole sharded deployment.

    ``shard_audits`` are the per-shard :class:`InstantAudit` witnesses;
    ``misplaced`` maps shard index to keys visible there that the keymap
    assigns elsewhere (the routing invariant the Theorem 3 stitch relies
    on).  The deployment holds iff every shard's invariant holds and no
    key is misplaced.
    """

    holds: bool
    shard_audits: list[InstantAudit]
    misplaced: dict[int, list[str]]
    detail: str = ""

    def __bool__(self) -> bool:
        return self.holds


def audit_deployment(deployment) -> DeploymentAudit:
    """Stitch per-shard recoverability witnesses into one verdict.

    The stitch is Theorem 3's argument run in reverse.  The keymap
    partitions the keys — and, through each shard's private ``page_of``
    space, the pages — into disjoint sets, so the deployment's log is
    the disjoint union of the shard logs and its installation graph is
    the disjoint union of the shard graphs (no cross-shard operation
    exists to add an edge between components; :meth:`Keymap.owner`
    refuses them at the door).  A union of per-component prefixes is a
    prefix of the union, and a union of states each explained by its
    component's prefix is explained by the union prefix.  Hence: if
    every shard's Recovery Invariant holds — each shard's not-redone
    records induce a prefix explaining its stable state — the
    deployment-wide invariant holds, and independent per-shard recovery
    is exactly as sound as one global recovery would be.

    The one premise the per-shard audits cannot see is the partition
    itself, so this audit re-checks it: every key visible on a shard
    must be one the keymap routes there.  A misplaced key means some
    write bypassed the router, and the disjoint-union argument — not
    just the audit — is void.
    """
    shard_audits = [
        audit_instant(shard, instant=index)
        for index, shard in enumerate(deployment.shards)
    ]
    misplaced: dict[int, list[str]] = {}
    keymap = deployment.keymap
    for index, shard in enumerate(deployment.shards):
        wrong = sorted(
            key for key in shard.method.dump() if keymap.shard_of(key) != index
        )
        if wrong:
            misplaced[index] = wrong
    failed = [a.instant for a in shard_audits if not a.holds]
    details = []
    if failed:
        details.append(f"shard invariant failed on {failed}")
    if misplaced:
        details.append(f"misplaced keys: {misplaced}")
    return DeploymentAudit(
        holds=not failed and not misplaced,
        shard_audits=shard_audits,
        misplaced=misplaced,
        detail="; ".join(details),
    )


def installation_graph_of(db: KVDatabase) -> InstallationGraph:
    """The abstract installation graph of the engine's stable log — used
    by the E9 experiment to show the disciplines shape the graph."""
    tracker = AuditTracker(db.method)
    tracker.sync()
    return tracker.installation
