"""Crash simulation harnesses.

:func:`~repro.sim.crash.crash_once` runs a workload to a chosen instant,
crashes, recovers, and verifies the durability contract;
:func:`~repro.sim.crash.crash_sweep` does it at every instant (or a
sample), which is how experiment E5 certifies that the §6 methods recover
from *any* crash point.
"""

from repro.sim.crash import (
    CrashResult,
    canonical_state,
    cold_restart_states,
    crash_once,
    crash_sweep,
    repeated_crashes,
)

__all__ = [
    "CrashResult",
    "canonical_state",
    "cold_restart_states",
    "crash_once",
    "crash_sweep",
    "repeated_crashes",
]
