"""Logical recovery (§6.1), System R style.

A logical operation is conceptually a map from one whole database state
to the next, so installing one requires atomically transforming the
entire stable state.  System R achieved this with a staging area and a
checkpoint record that "swings a pointer":

- between checkpoints the stable state is *never touched*; updated pages
  live in the cache;
- a checkpoint quiesces, forces the log, writes the cached pages to the
  staging area, and then performs one atomic root write that makes the
  staging area the stable state (see :class:`repro.storage.ShadowStore`);
- that single atomic action installs every operation logged since the
  previous checkpoint *and* removes them from ``redo_set`` (recovery
  starts after the checkpoint LSN recorded in the root), so the recovery
  invariant is maintained — the §6.1 argument, executable.

In write-graph terms the system is a two-node graph: the stable state
node and one node accumulating everything since the last checkpoint; the
pointer swing is the collapse of the two.

After a crash, recovery replays *all* logical records after the root's
checkpoint LSN through the normal update code path.
"""

from __future__ import annotations

from typing import Any

from repro.logmgr import CheckpointRecord, LogicalRedo
from repro.methods.base import Machine, RecoveryMethodKV
from repro.obs.trace import traced_segments
from repro.storage import Page, ShadowStore


class LogicalKV(RecoveryMethodKV):
    """Key-value store recovered by logical logging over a shadow store."""

    name = "logical"

    def __init__(self, machine: Machine | None = None, n_pages: int = 8):
        super().__init__(machine, n_pages)
        self.shadow = ShadowStore(self.machine.disk)
        # The System R cache: every page updated since the last checkpoint
        # stays here in full; the stable directory is never touched.
        self._cache: dict[str, Page] = {}
        # Set by begin_lazy_recovery(); first data access drains it.
        self._lazy_plan = None

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------

    def _lazy_gate(self) -> None:
        """Drain any pending lazy-restart suffix before serving data.

        Logical recovery has one global chain, so the first access pays
        the whole remaining replay (the drain is re-entrant-safe: a
        replayed record's own page reads fall through the plan's active
        latch instead of recursing).
        """
        plan = self._lazy_plan
        if plan is not None and not plan.done:
            plan.drain()

    def _page_for_update(self, page_id: str) -> Page:
        self._lazy_gate()
        page = self._cache.get(page_id)
        if page is None:
            if self.shadow.has_current(page_id):
                page = self.shadow.read_current(page_id)
            else:
                page = Page(page_id)
            self._cache[page_id] = page
        return page

    def _page_for_read(self, page_id: str) -> Page | None:
        self._lazy_gate()
        page = self._cache.get(page_id)
        if page is not None:
            return page
        if self.shadow.has_current(page_id):
            return self.shadow.read_current(page_id)
        return None

    # ------------------------------------------------------------------
    # Normal operation
    # ------------------------------------------------------------------

    def _apply_logical(self, description: tuple) -> None:
        """The normal update path; recovery replays through this too."""
        kind, key, value = description
        page = self._page_for_update(self.page_of(key))
        if kind == "kv-put":
            page.put(key, value)
        elif kind == "kv-delete":
            page.delete(key)
        elif kind == "kv-add":
            # The read happens at replay time too: a logical add record
            # carries the delta, not the result.
            page.put(key, (page.get(key) or 0) + value)
        elif kind == "kv-copyadd":
            src, delta = value
            src_page = self._page_for_read(self.page_of(src))
            src_value = src_page.get(src) if src_page is not None else None
            page.put(key, (src_value or 0) + delta)
        else:
            raise ValueError(f"unknown logical operation {kind!r}")

    def put(self, key: str, value: Any) -> None:
        description = ("kv-put", key, value)
        self.machine.log.append(LogicalRedo(description))
        self._apply_logical(description)
        self.stats.operations += 1

    def delete(self, key: str) -> None:
        description = ("kv-delete", key, None)
        self.machine.log.append(LogicalRedo(description))
        self._apply_logical(description)
        self.stats.operations += 1

    def add(self, key: str, delta: int) -> None:
        description = ("kv-add", key, delta)
        self.machine.log.append(LogicalRedo(description))
        self._apply_logical(description)
        self.stats.operations += 1

    def copyadd(self, dst: str, src: str, delta: int) -> None:
        """A truly logical cross-key operation: the record carries the
        source key and delta; replay performs the read."""
        description = ("kv-copyadd", dst, (src, delta))
        self.machine.log.append(LogicalRedo(description))
        self._apply_logical(description)
        self.stats.operations += 1

    def get(self, key: str) -> Any:
        page = self._page_for_read(self.page_of(key))
        return None if page is None else page.get(key)

    # ------------------------------------------------------------------
    # Checkpoint: the quiesce-and-swing of §6.1
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        # A pending lazy suffix must be applied before the swing: the
        # root pointer moves past every stable LSN, so records not yet
        # replayed would silently leave redo_set.
        self._lazy_gate()
        # Barrier, not a plain force: the staged pages snapshot the live
        # cache — state through the last *applied* operation — so the
        # stable log must cover every applied LSN before the swing, or a
        # group-commit batch still in flight would leave the installed
        # root ahead of the durable prefix.
        self.machine.log.flush(barrier=True)
        checkpoint_lsn = self.machine.log.stable_lsn
        # One batched staging call: the directory lookup and write loop
        # are amortized across the whole cache, like the log's window
        # encoder amortizes framing across a group-commit batch.
        self.shadow.stage_pages(self._cache.values())
        self.machine.log.append(CheckpointRecord(("logical", checkpoint_lsn)))
        self.machine.log.flush()
        # THE atomic installation: one root write installs every staged
        # page and moves every logged operation out of redo_set at once.
        self.shadow.swing_pointer(checkpoint_lsn)
        self._cache.clear()
        self.stats.checkpoints += 1

    def quiesce(self) -> None:
        """Stabilize without logging: stage the cache and swing the root,
        but append no :class:`CheckpointRecord`.

        Sound because recovery reads the replay start from the *root
        pointer*, never from checkpoint records — the swing alone moves
        the replayed suffix out of ``redo_set``.  The append-free form is
        what keeps repeated cold starts byte-identical: a second cold
        start replays the (now empty) suffix after the swung root and
        quiesces into a no-op.
        """
        self._lazy_gate()
        self.machine.log.flush(barrier=True)
        if not self._cache:
            return
        checkpoint_lsn = self.machine.log.stable_lsn
        self.shadow.stage_pages(self._cache.values())
        self.shadow.swing_pointer(checkpoint_lsn)
        self._cache.clear()

    def durable_count(self) -> int:
        return self.machine.log.stable_count_of(LogicalRedo)

    def truncation_point(self) -> int:
        """Recovery replays strictly after the root pointer's checkpoint
        LSN, so everything at or below it can be retired."""
        checkpoint_lsn = self.shadow.checkpoint_lsn()
        return checkpoint_lsn + 1 if checkpoint_lsn >= 0 else -1

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        super().crash()
        self._cache.clear()
        self._lazy_plan = None

    def begin_lazy_recovery(self):
        """Analysis-only restart: the O(1) root-pointer read, with the
        whole replay suffix deferred.

        Logical operations are state-to-state maps over one global
        chain — there is no page granularity to exploit — so "lazy"
        here means the analysis (reading the replay start off the root
        pointer) is decoupled from the replay: the engine serves
        immediately, the background drainer consumes the suffix in
        batches, and the first foreground data access pays whatever
        remains (the :meth:`_lazy_gate` in the page accessors).
        """
        from repro.logmgr import LOGICAL_PAGE
        from repro.methods.lazy import SuffixLazyPlan

        tracer = self.tracer
        progress = self.machine.progress
        span = tracer.span("recovery.lazy", method=self.name)
        self.machine.reboot_pool()
        self._cache.clear()
        self.shadow = ShadowStore(self.machine.disk)
        self.shadow.abandon_staging()  # half-built staging is garbage
        if progress.enabled:
            progress.set_phase("analysis")
        checkpoint_lsn = self.shadow.checkpoint_lsn()
        index = self.machine.log.page_index(start_lsn=max(0, checkpoint_lsn + 1))
        entries = index.chain(LOGICAL_PAGE, checkpoint_lsn + 1)

        def apply_record(record) -> None:
            self.stats.records_scanned += 1
            if not isinstance(record.payload, LogicalRedo):
                self.stats.records_skipped += 1
                return
            self._apply_logical(record.payload.description)
            self.stats.records_replayed += 1

        plan = SuffixLazyPlan(self, entries, apply_record)
        self._lazy_plan = plan
        self.stats.recoveries += 1
        span.end(backlog=plan.backlog(), redo_start=checkpoint_lsn + 1)
        return plan

    def recover(self, full_scan: bool = False) -> None:
        """Start from the stable state named by the root pointer and
        replay every later stable logical record, streamed straight off
        the segmented log (the checkpoint suffix; no record list is
        materialized).  ``full_scan`` is accepted for interface parity;
        the restored root pointer already names the right replay start
        (the backup's own checkpoint LSN).  Cold start composes cleanly:
        the root pointer lives on the disk and the suffix streams off
        the segment files, so a process that lost every Python object
        still recovers to the identical shadow state."""
        tracer = self.tracer
        progress = self.machine.progress
        span = tracer.span("recovery", method=self.name, full_scan=full_scan)
        before = self.stats.as_dict()
        self.machine.reboot_pool()
        self._cache.clear()
        self._lazy_plan = None
        self.shadow = ShadowStore(self.machine.disk)
        self.shadow.abandon_staging()  # half-built staging is garbage
        if progress.enabled:
            progress.set_phase("analysis")
        analysis = tracer.span("recovery.analysis")
        checkpoint_lsn = self.shadow.checkpoint_lsn()
        analysis.end(checkpoint_lsn=checkpoint_lsn, redo_start=checkpoint_lsn + 1)
        records = self.machine.log.stable_records_from(checkpoint_lsn + 1)
        if progress.enabled:
            progress.set_phase("redo")
            records = progress.watch(records, log=self.machine.log, stats=self.stats)
        if tracer.enabled:
            records = traced_segments(tracer, self.machine.log, records)
        for record in records:
            self.stats.records_scanned += 1
            if not isinstance(record.payload, LogicalRedo):
                self.stats.records_skipped += 1
                if tracer.enabled:
                    tracer.event(
                        "recovery.record",
                        lsn=record.lsn,
                        decision="skipped",
                        reason="not_redo_payload",
                    )
                continue
            self._apply_logical(record.payload.description)
            self.stats.records_replayed += 1
            if tracer.enabled:
                tracer.event(
                    "recovery.record", lsn=record.lsn, decision="replayed"
                )
        self.stats.recoveries += 1
        span.end(
            redo_start=checkpoint_lsn + 1,
            scanned=self.stats.records_scanned - before["records_scanned"],
            replayed=self.stats.records_replayed - before["records_replayed"],
            skipped=self.stats.records_skipped - before["records_skipped"],
        )
        if progress.enabled:
            progress.finish()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def dump(self) -> dict[str, Any]:
        self._lazy_gate()
        result: dict[str, Any] = {}
        page_ids = set(self.shadow.current_page_ids()) | set(self._cache)
        for page_id in sorted(page_ids):
            page = self._page_for_read(page_id)
            if page is not None:
                result.update(page.cells)
        return result
