"""Generalized LSN-based recovery (§6.4) as a key-value engine.

Physiological recovery's defining restriction is one page per operation
(§6.3).  Section 6.4 lifts it: log operations may read and write
*different* pages, every written page is tagged with the record's LSN,
and the cache manager enforces the write orderings the installation
graph implies.  Here that buys a genuinely logical cross-key operation —
``copyadd(dst, src, delta)`` — whose log record carries only the key
names and delta (the read happens again at replay), even when the two
keys live on different pages.

The careful write ordering: after ``copyadd``, the destination page must
reach disk before the source page may carry *later* updates to disk —
otherwise a crash could leave a stable source the replayed record would
mis-read.  The engine registers exactly that flush constraint, and the
pool resolves would-be cycles by eager flushing (the write graph's
acyclicity side condition, operationalized).

Everything single-page (put/add/delete) behaves exactly like
:class:`~repro.methods.physiological.PhysiologicalKV`.
"""

from __future__ import annotations

from typing import Any

from repro.logmgr import (
    CheckpointRecord,
    MultiPageRedo,
    PageAction,
    PhysiologicalRedo,
)
from repro.methods.base import Machine, RecoveryMethodKV
from repro.obs.trace import traced_segments


class GeneralizedKV(RecoveryMethodKV):
    """Key-value store recovered by generalized LSN-based logging."""

    name = "generalized"

    def __init__(
        self,
        machine: Machine | None = None,
        n_pages: int = 8,
        sharp_checkpoints: bool = False,
    ):
        super().__init__(machine, n_pages)
        self.sharp_checkpoints = sharp_checkpoints

    def dirty_table(self) -> dict[str, int]:
        """The dirty page table (page -> recLSN), read off the pool's
        live write graph — see
        :meth:`repro.methods.physiological.PhysiologicalKV.dirty_table`."""
        return self.machine.pool.scheduler.rec_lsns()

    # ------------------------------------------------------------------
    # Single-page operations (as in physiological recovery)
    # ------------------------------------------------------------------

    def _log_and_apply(self, page_id: str, action: PageAction) -> None:
        entry = self.machine.log.append(PhysiologicalRedo(page_id, action))
        self.machine.pool.update(
            page_id, lambda p: action.apply_to(p, lsn=entry.lsn), create=True
        )
        self.stats.operations += 1

    def put(self, key: str, value: Any) -> None:
        self._log_and_apply(self.page_of(key), PageAction("put", (key, value)))

    def delete(self, key: str) -> None:
        self._log_and_apply(self.page_of(key), PageAction("delete", (key,)))

    def add(self, key: str, delta: int) -> None:
        self._log_and_apply(self.page_of(key), PageAction("add", (key, delta)))

    def get(self, key: str) -> Any:
        try:
            return self.machine.pool.get_page(self.page_of(key)).get(key)
        except KeyError:
            return None

    # ------------------------------------------------------------------
    # The §6.4 operation: cross-page read-write
    # ------------------------------------------------------------------

    def copyadd(self, dst: str, src: str, delta: int) -> None:
        dst_page = self.page_of(dst)
        src_page = self.page_of(src)
        pool = self.machine.pool
        if dst_page == src_page:
            # Same page: an ordinary physiological record suffices.
            self._log_and_apply(
                dst_page, PageAction("copycell", (dst, src, delta))
            )
            return
        action = PageAction("copyfrom", (src_page, src, dst, delta))
        entry = self.machine.log.append(
            MultiPageRedo(read_page_ids=(src_page,), writes={dst_page: (action,)})
        )
        reader = lambda pid: pool.get_page(pid, create=True)
        pool.update(
            dst_page,
            lambda p: action.apply_to(p, lsn=entry.lsn, reader=reader),
            create=True,
        )
        # Careful write ordering as the write graph's add-edge: the
        # destination page must be installed before the source page can
        # carry later updates to disk.
        pool.add_flush_constraint(dst_page, src_page)
        self.stats.operations += 1

    # ------------------------------------------------------------------
    # Checkpoint / durability
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Log a dirty-page-table snapshot (fuzzy unless sharp)."""
        if self.sharp_checkpoints:
            self.machine.log.flush()
            self.machine.pool.flush_all()
        snapshot = tuple(sorted(self.dirty_table().items()))
        self.machine.log.append(CheckpointRecord(("generalized", snapshot)))
        self.machine.log.flush()
        self.stats.checkpoints += 1

    def durable_count(self) -> int:
        return self.machine.log.stable_count_of(PhysiologicalRedo, MultiPageRedo)

    def truncation_point(self) -> int:
        """As for physiological recovery: stay below the last stable
        checkpoint and every live recLSN."""
        checkpoint_lsn = self.machine.log.last_stable_checkpoint_lsn
        if checkpoint_lsn < 0:
            return -1
        return min([checkpoint_lsn, *self.dirty_table().values()])

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def begin_lazy_recovery(self):
        """Analysis-only restart for generalized (§6.4) recovery.

        Same LSN-table analysis as the physiological path, plus the
        multi-page wrinkle: a record that reads one page and writes
        another links their chains with a conflict edge, so per-page
        replay order alone is not conflict-order consistent.  The index
        carries those edges; pages they connect replay together as one
        union-find component, merged in global LSN order, so a replayed
        read always sees the source page with exactly its earlier
        replayed writes — Theorem 3's premise holds and the drained
        state equals the eager scan's.
        """
        from repro.methods.lazy import PagewiseLazyPlan, lsn_table_analysis

        tracer = self.tracer
        progress = self.machine.progress
        span = tracer.span("recovery.lazy", method=self.name)
        self.machine.reboot_pool()
        if progress.enabled:
            progress.set_phase("analysis")
        index, table = lsn_table_analysis(self.machine.log)
        pool = self.machine.pool
        reader = lambda pid: pool.get_page(pid, create=True)

        def apply_record(entry) -> None:
            self.stats.records_scanned += 1
            payload = entry.payload
            if isinstance(payload, PhysiologicalRedo):
                page = pool.get_page(payload.page_id, create=True)
                if page.lsn >= entry.lsn:
                    self.stats.records_skipped += 1
                    return
                pool.update(
                    payload.page_id,
                    lambda p, a=payload.action, l=entry.lsn: a.apply_to(p, lsn=l),
                )
                self.stats.records_replayed += 1
            elif isinstance(payload, MultiPageRedo):
                replayed = False
                for page_id, actions in payload.writes.items():
                    page = pool.get_page(page_id, create=True)
                    if page.lsn >= entry.lsn:
                        continue

                    def apply_actions(p, actions=actions, lsn=entry.lsn):
                        for action in actions:
                            action.apply_to(p, lsn=lsn, reader=reader)

                    pool.update(page_id, apply_actions)
                    replayed = True
                    for read_id in payload.read_page_ids:
                        if read_id != page_id:
                            pool.add_flush_constraint(page_id, read_id)
                if replayed:
                    self.stats.records_replayed += 1
                else:
                    self.stats.records_skipped += 1
            else:
                self.stats.records_skipped += 1

        plan = PagewiseLazyPlan(
            self, index, table, apply_record, components=index.components()
        )
        self.stats.recoveries += 1
        span.end(backlog=plan.backlog(), dirty_pages=len(table))
        return plan

    def recover(self, full_scan: bool = False) -> None:
        """Analysis (reconstruct the dirty page table by streaming the
        stable checkpoint suffix), then LSN-test redo, also streamed.
        ``full_scan`` starts the scan at the head (media recovery).
        Multi-page records round-trip the binary codec like everything
        else, so both passes work identically over a file-backed log's
        evicted segments (re-decoded per segment) and after a cold
        start from the segment directory.

        Generalized recovery stays sequential even when its physical
        cousins partition: a §6.4 multi-page record *reads* pages other
        records write, which is exactly a cross-partition conflict edge —
        per-page replay order would no longer be conflict-order
        consistent, so Theorem 3's premise fails and the partitioned
        schedule is unsound here (see :mod:`repro.methods.partition`)."""
        from repro.methods.physiological import analysis_pass

        tracer = self.tracer
        progress = self.machine.progress
        span = tracer.span("recovery", method=self.name, full_scan=full_scan)
        before = self.stats.as_dict()
        self.machine.reboot_pool()

        log = self.machine.log
        scan_from = 0 if full_scan else max(0, log.last_stable_checkpoint_lsn)
        if progress.enabled:
            progress.set_phase("analysis")
        analysis = tracer.span("recovery.analysis", scan_from=scan_from)
        table, redo_start = analysis_pass(log.stable_records_from(scan_from))
        if full_scan:
            redo_start = 0
        analysis.end(redo_start=redo_start, dirty_pages=len(table))

        pool = self.machine.pool
        reader = lambda pid: pool.get_page(pid, create=True)
        records = log.stable_records_from(redo_start)
        if progress.enabled:
            progress.set_phase("redo")
            records = progress.watch(records, log=log, stats=self.stats)
        if tracer.enabled:
            records = traced_segments(tracer, log, records)
        for entry in records:
            self.stats.records_scanned += 1
            payload = entry.payload
            if isinstance(payload, PhysiologicalRedo):
                page = pool.get_page(payload.page_id, create=True)
                if page.lsn >= entry.lsn:
                    self.stats.records_skipped += 1
                    if tracer.enabled:
                        tracer.event(
                            "recovery.record",
                            lsn=entry.lsn,
                            decision="skipped",
                            reason="lsn_test",
                            page=payload.page_id,
                            page_lsn=page.lsn,
                        )
                    continue
                pool.update(
                    payload.page_id,
                    lambda p, a=payload.action, l=entry.lsn: a.apply_to(p, lsn=l),
                )
                self.stats.records_replayed += 1
                if tracer.enabled:
                    tracer.event(
                        "recovery.record",
                        lsn=entry.lsn,
                        decision="replayed",
                        page=payload.page_id,
                    )
            elif isinstance(payload, MultiPageRedo):
                replayed = False
                for page_id, actions in payload.writes.items():
                    page = pool.get_page(page_id, create=True)
                    if page.lsn >= entry.lsn:
                        continue

                    def apply_actions(p, actions=actions, lsn=entry.lsn):
                        for action in actions:
                            action.apply_to(p, lsn=lsn, reader=reader)

                    pool.update(page_id, apply_actions)
                    replayed = True
                    # Re-arm the careful write ordering for the recovered
                    # incarnation.
                    for read_id in payload.read_page_ids:
                        if read_id != page_id:
                            pool.add_flush_constraint(page_id, read_id)
                if replayed:
                    self.stats.records_replayed += 1
                    if tracer.enabled:
                        tracer.event(
                            "recovery.record",
                            lsn=entry.lsn,
                            decision="replayed",
                            pages=sorted(payload.writes),
                        )
                else:
                    self.stats.records_skipped += 1
                    if tracer.enabled:
                        tracer.event(
                            "recovery.record",
                            lsn=entry.lsn,
                            decision="skipped",
                            reason="lsn_test",
                            pages=sorted(payload.writes),
                        )
            else:
                self.stats.records_skipped += 1
                if tracer.enabled:
                    tracer.event(
                        "recovery.record",
                        lsn=entry.lsn,
                        decision="skipped",
                        reason="not_redo_payload",
                    )
        self.stats.recoveries += 1
        span.end(
            redo_start=redo_start,
            scanned=self.stats.records_scanned - before["records_scanned"],
            replayed=self.stats.records_replayed - before["records_replayed"],
            skipped=self.stats.records_skipped - before["records_skipped"],
        )
        if progress.enabled:
            progress.finish()
