"""Physical recovery (§6.2).

"Early recovery techniques frequently exploited physical recovery,
logging the exact bytes of data and the exact locations written."
Physical operations only *write* — there are no write–read or read–write
conflicts, the installation graph is a set of per-page ww chains, and the
write graph collapses to one node per page.

Consequences implemented here:

- A ``put`` logs the exact cell written (partial-page logging); a
  ``delete`` logs the whole-page after-image, because "write these bytes"
  cannot express "remove those bytes" any other way.
- The redo test is trivially *replay everything after the checkpoint*:
  while operations sit in ``redo_set``, their target cells are unexposed
  (nothing reads them during recovery), so replaying them against
  whatever the disk holds is always harmless and always sufficient.
- A checkpoint first flushes the cache (so every logged effect is in the
  stable state), then appends and forces a checkpoint record: that single
  log append atomically moves all earlier operations out of ``redo_set``
  — their effects are already installed, so the recovery invariant is
  preserved (the §6.2 argument, executable).
"""

from __future__ import annotations

from typing import Any

from repro.logmgr import CheckpointRecord, LogRecord, PhysicalRedo
from repro.methods.base import Machine, RecoveryMethodKV
from repro.methods.partition import install_pages, partitioned_redo
from repro.obs.trace import traced_segments
from repro.storage.page import Page


class PhysicalKV(RecoveryMethodKV):
    """Key-value store recovered by physical (location/value) logging."""

    name = "physical"

    def __init__(
        self,
        machine: Machine | None = None,
        n_pages: int = 8,
        parallel_recovery: bool = False,
        recovery_workers: int = 4,
    ):
        super().__init__(machine, n_pages)
        # Opt-in partitioned redo (see repro.methods.partition): physical
        # records are blind single-page writes, the easiest case —
        # no cross-page conflict edges at all.
        self.parallel_recovery = parallel_recovery
        self.recovery_workers = recovery_workers

    # ------------------------------------------------------------------
    # Normal operation
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        page_id = self.page_of(key)
        entry = self.machine.log.append(PhysicalRedo(page_id, {key: value}))
        self.machine.pool.update(
            page_id, lambda p: p.put(key, value, lsn=entry.lsn), create=True
        )
        self.stats.operations += 1

    def delete(self, key: str) -> None:
        page_id = self.page_of(key)
        page = self.machine.pool.get_page(page_id, create=True)
        after_image = {k: v for k, v in page.cells.items() if k != key}
        entry = self.machine.log.append(
            PhysicalRedo(page_id, after_image, whole_page=True)
        )
        self.machine.pool.update(
            page_id, lambda p: p.delete(key, lsn=entry.lsn), create=True
        )
        self.stats.operations += 1

    def add(self, key: str, delta: int) -> None:
        """Physical logging of a read-modify-write: the *result* is
        computed at execution time and logged as a blind value write.
        Replay never reads — the §6.2 property that makes every variable
        in ``redo_set`` unexposed and replays unconditionally safe."""
        page_id = self.page_of(key)
        page = self.machine.pool.get_page(page_id, create=True)
        result = (page.get(key) or 0) + delta
        entry = self.machine.log.append(PhysicalRedo(page_id, {key: result}))
        self.machine.pool.update(
            page_id, lambda p: p.put(key, result, lsn=entry.lsn)
        )
        self.stats.operations += 1

    def copyadd(self, dst: str, src: str, delta: int) -> None:
        """Cross-key derivation, physically logged: the read of ``src``
        happens now; the log sees only the blind write of the result."""
        src_page = self.machine.pool.get_page(self.page_of(src), create=True)
        result = (src_page.get(src) or 0) + delta
        dst_page_id = self.page_of(dst)
        entry = self.machine.log.append(PhysicalRedo(dst_page_id, {dst: result}))
        self.machine.pool.update(
            dst_page_id, lambda p: p.put(dst, result, lsn=entry.lsn), create=True
        )
        self.stats.operations += 1

    def get(self, key: str) -> Any:
        try:
            return self.machine.pool.get_page(self.page_of(key)).get(key)
        except KeyError:
            return None

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush cache, then atomically retire the log prefix (§6.2)."""
        self.machine.log.flush()          # WAL: records before pages
        self.machine.pool.flush_all()     # install every logged effect
        self.machine.log.append(CheckpointRecord(("physical",)))
        self.machine.log.flush()          # the atomic redo_set update
        self.stats.checkpoints += 1

    def durable_count(self) -> int:
        """Operations with stable log records (checkpoint records don't
        count as operations)."""
        return self.machine.log.stable_count_of(PhysicalRedo)

    def truncation_point(self) -> int:
        """A physical checkpoint installs everything before it, so the
        log below the last stable checkpoint record is never read."""
        return self.machine.log.last_stable_checkpoint_lsn

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    @staticmethod
    def _apply_physical(page: Page, record: LogRecord) -> bool:
        """Blind install of one physical record into one page — §6.2:
        blind replays are always harmless, so the redo test is "yes"."""
        payload = record.payload
        if payload.whole_page:
            page.cells.clear()
        page.cells.update(payload.cells)
        page.stamp(max(page.lsn, record.lsn))
        return True

    def begin_lazy_recovery(self):
        """Analysis-only restart for physical recovery.

        The eager pass replays the whole checkpoint suffix blindly; the
        lazy pass replays each page's own chain (everything after the
        checkpoint), also blindly, on first access.  Physical records
        are single-page blind writes — no cross-chain conflict edges —
        so per-page chain order alone is conflict-order consistent and
        the drained state equals the eager one.
        """
        from repro.methods.lazy import PagewiseLazyPlan

        tracer = self.tracer
        progress = self.machine.progress
        span = tracer.span("recovery.lazy", method=self.name)
        self.machine.reboot_pool()
        if progress.enabled:
            progress.set_phase("analysis")
        log = self.machine.log
        start = max(0, log.last_stable_checkpoint_lsn + 1)
        index = log.page_index(start_lsn=start)
        table: dict[str, int] = {}
        for page_id in index.data_pages():
            first = index.first_lsn(page_id, after_lsn=start - 1)
            if first is not None:
                table[page_id] = first
        pool = self.machine.pool

        def apply_record(record: LogRecord) -> None:
            self.stats.records_scanned += 1
            if not isinstance(record.payload, PhysicalRedo):
                self.stats.records_skipped += 1
                return
            pool.update(
                record.payload.page_id,
                lambda p, r=record: self._apply_physical(p, r),
                create=True,
            )
            self.stats.records_replayed += 1

        plan = PagewiseLazyPlan(self, index, table, apply_record)
        self.stats.recoveries += 1
        span.end(backlog=plan.backlog(), redo_start=start)
        return plan

    def recover(self, full_scan: bool = False) -> None:
        """Replay every stable physical record after the last stable
        checkpoint (or the whole log for media recovery), blindly,
        streaming the checkpoint suffix straight off the segmented log —
        no record list is materialized.  On a file-backed log the stream
        decodes evicted segments from their files one segment at a time,
        so a cold start (:meth:`~repro.logmgr.manager.LogManager.open`)
        recovers in O(segment) memory and lands on the same state as the
        in-memory path.

        With ``parallel_recovery`` the suffix is partitioned by page and
        replayed concurrently; blind single-page writes have no
        cross-page conflict edges, so any schedule preserving per-page
        log order is conflict-order consistent and Theorem 3 applies
        (see :mod:`repro.methods.partition`)."""
        tracer = self.tracer
        progress = self.machine.progress
        span = tracer.span("recovery", method=self.name, full_scan=full_scan)
        before = self.stats.as_dict()
        self.machine.reboot_pool()
        log = self.machine.log
        if progress.enabled:
            progress.set_phase("analysis")
        analysis = tracer.span("recovery.analysis", full_scan=full_scan)
        start = 0 if full_scan else log.last_stable_checkpoint_lsn + 1
        analysis.end(redo_start=start)

        if self.parallel_recovery:
            result = partitioned_redo(
                self.machine.disk,
                log.stable_records_from(start),
                self._apply_physical,
                max_workers=self.recovery_workers,
            )
            install_pages(self.machine.pool, result)
            self.stats.records_scanned += result.scanned
            self.stats.records_replayed += result.replayed
            self.stats.records_skipped += result.skipped
            self.stats.recoveries += 1
            if tracer.enabled:
                # Worker threads replay concurrently; one summary event
                # stands in for the per-record stream.
                tracer.event(
                    "recovery.partitioned",
                    scanned=result.scanned,
                    replayed=result.replayed,
                    skipped=result.skipped,
                    workers=self.recovery_workers,
                )
            span.end(
                redo_start=start,
                scanned=result.scanned,
                replayed=result.replayed,
                skipped=result.skipped,
            )
            if progress.enabled:
                progress.finish()
            return

        pool = self.machine.pool
        records = log.stable_records_from(start)
        if progress.enabled:
            progress.set_phase("redo")
            records = progress.watch(records, log=log, stats=self.stats)
        if tracer.enabled:
            records = traced_segments(tracer, log, records)
        for record in records:
            self.stats.records_scanned += 1
            if not isinstance(record.payload, PhysicalRedo):
                self.stats.records_skipped += 1
                if tracer.enabled:
                    tracer.event(
                        "recovery.record",
                        lsn=record.lsn,
                        decision="skipped",
                        reason="not_redo_payload",
                    )
                continue
            pool.update(
                record.payload.page_id,
                lambda p, r=record: self._apply_physical(p, r),
                create=True,
            )
            self.stats.records_replayed += 1
            if tracer.enabled:
                tracer.event(
                    "recovery.record",
                    lsn=record.lsn,
                    decision="replayed",
                    page=record.payload.page_id,
                )
        self.stats.recoveries += 1
        span.end(
            redo_start=start,
            scanned=self.stats.records_scanned - before["records_scanned"],
            replayed=self.stats.records_replayed - before["records_replayed"],
            skipped=self.stats.records_skipped - before["records_skipped"],
        )
        if progress.enabled:
            progress.finish()
