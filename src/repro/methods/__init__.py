"""The real recovery methods of §6, as runnable key-value engines.

Each method drives the same substrates — :class:`~repro.storage.Disk`,
:class:`~repro.logmgr.LogManager`, :class:`~repro.cache.BufferPool` — and
offers the same interface (:class:`~repro.methods.base.RecoveryMethodKV`):
``put``/``get``/``delete``, ``checkpoint``, ``crash``, ``recover``.

- :class:`~repro.methods.logical.LogicalKV` — §6.1, System R style:
  stable state untouched between checkpoints, staged pages installed by
  an atomic pointer swing, full replay of the log suffix.
- :class:`~repro.methods.physical.PhysicalKV` — §6.2: blind cell writes
  logged by exact location, full replay of the log suffix; checkpoint
  flushes the cache so replays are harmless re-installs.
- :class:`~repro.methods.physiological.PhysiologicalKV` — §6.3: one-page
  logical records, page-LSN tags, and the LSN redo test; steal/no-force.
- :class:`~repro.methods.generalized.GeneralizedKV` — §6.4: multi-page
  records (cross-key ``copyadd``) with per-page LSN tags and careful
  write ordering.  The method's other natural application, B-tree split
  logging, lives in :mod:`repro.btree`.
"""

from repro.methods.base import Machine, MethodStats, RecoveryMethodKV
from repro.methods.generalized import GeneralizedKV
from repro.methods.logical import LogicalKV
from repro.methods.physical import PhysicalKV
from repro.methods.physiological import PhysiologicalKV

METHODS = {
    "logical": LogicalKV,
    "physical": PhysicalKV,
    "physiological": PhysiologicalKV,
    "generalized": GeneralizedKV,
}

__all__ = [
    "METHODS",
    "GeneralizedKV",
    "LogicalKV",
    "Machine",
    "MethodStats",
    "PhysicalKV",
    "PhysiologicalKV",
    "RecoveryMethodKV",
]
