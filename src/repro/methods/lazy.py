"""Lazy (on-demand) redo: serve first, replay as touched.

Eager recovery replays the whole redo suffix before the first request is
answered; time-to-service is O(log suffix).  The per-page redo index
(:mod:`repro.logmgr.pageindex`) decouples the two: analysis still runs
up front (it is O(index), not O(log)), but replay happens *per page*,
on the page's first access, with a background drainer retiring the
backlog in recLSN order.  Time-to-service becomes O(analysis).

Soundness is Theorem 3's schedule freedom made operational.  The redo
records of one page form a chain; replaying a page's chain in LSN order
is exactly the eager scan restricted to that page.  Two restrictions
keep the reordered schedule conflict-order consistent:

- **LSN-test methods** replay each fetched record under the same page-LSN
  test the eager scan uses, so a record whose effect is already installed
  is bypassed identically.
- **Multi-page records** (§6.4) read pages other records write — a
  cross-chain conflict edge.  Chains connected by such edges are replayed
  together, as one merged LSN-ordered unit (the union-find components the
  index exposes), so a replayed read never observes a page that is
  missing earlier replayed writes.  Pages outside every component carry
  no cross-chain edges: their chains commute with everything else
  (Corollary 5 applied to the page-partitioned conflict graph).

A page untouched by the backlog is *clean* by the analysis result —
every record below its table entry is installed in the stable state —
so serving it straight off the disk before the drain finishes returns
exactly what eager recovery would have produced.

Two plan shapes:

- :class:`PagewiseLazyPlan` for the page-granular methods (physical,
  physiological, generalized): a pending table page -> replay-start LSN,
  faulted by the buffer pool's ``page_fault`` hook on first access.
- :class:`SuffixLazyPlan` for logical recovery, whose single global
  chain admits no page granularity: analysis is the O(1) root-pointer
  read, and the first data access drains the whole suffix (the gate is
  in :class:`~repro.methods.logical.LogicalKV`'s page accessors).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.logmgr import LogRecord, PageRedoIndex

if TYPE_CHECKING:  # pragma: no cover
    from repro.methods.base import RecoveryMethodKV


def lsn_table_analysis(log) -> tuple[PageRedoIndex, dict[str, int]]:
    """The §4.3 analysis phase off the per-page index, no record scan.

    Reconstructs the same dirty page table as
    :func:`~repro.methods.physiological.analysis_pass`: the last stable
    checkpoint's logged snapshot, extended with every page first dirtied
    after the checkpoint (its chain's first post-checkpoint LSN is the
    recLSN the eager scan's ``setdefault`` would record).  The index is
    built from the minimum LSN the table could name, so every returned
    chain covers its page's full replay range.
    """
    checkpoint_lsn = log.last_stable_checkpoint_lsn
    snapshot: dict[str, int] = {}
    if checkpoint_lsn >= 0:
        snapshot = dict(log.entry(checkpoint_lsn).payload.data[1])
    earliest = min(snapshot.values(), default=checkpoint_lsn + 1)
    index = log.page_index(start_lsn=max(0, min(earliest, checkpoint_lsn + 1)))
    table = dict(snapshot)
    for page_id in index.data_pages():
        first = index.first_lsn(page_id, after_lsn=checkpoint_lsn)
        if first is not None:
            table.setdefault(page_id, first)
    return index, table


class PagewiseLazyPlan:
    """The pending-replay state of one lazy restart, page-granular.

    ``table`` maps each unrecovered page to its replay-start LSN; the
    plan retires pages by fetching their chains through
    :meth:`~repro.logmgr.manager.LogManager.fetch_chain` and feeding the
    records to ``apply_record`` (the method's own replay body, LSN test
    included).  ``components`` groups pages whose chains are linked by
    multi-page conflict edges — a fault on any member replays the whole
    group, merged in global LSN order.

    Every mutation runs under :attr:`lock` — the buffer pool's own
    mutex, because faults arrive from inside ``get_page`` already
    holding it, and the background drainer must exclude exactly those
    callers.  The plan installs itself as the pool's ``page_fault`` hook
    and detaches when the last page retires.
    """

    def __init__(
        self,
        method: "RecoveryMethodKV",
        index: PageRedoIndex,
        table: dict[str, int],
        apply_record: Callable[[LogRecord], None],
        components: dict[str, frozenset] | None = None,
    ):
        self.method = method
        self.index = index
        self.lock = method.machine.pool.mutex
        self._apply = apply_record
        self._pending: dict[str, int] = dict(table)
        # recLSN order for the background drain: oldest chains first, so
        # the truncation horizon advances as fast as the drain does.
        self._order = sorted(table, key=lambda p: (table[p], p))
        self._cursor = 0
        self._components = components if components is not None else {}
        self.pages_total = len(table)
        self.pages_replayed = 0
        self.records_fetched = 0
        self.closed = False
        method.machine.pool.page_fault = self.fault

    # -- observation (lock-free: reads are single attribute/len peeks) --

    @property
    def done(self) -> bool:
        """No pages left (drained, or abandoned via :meth:`close`)."""
        return self.closed or not self._pending

    def backlog(self) -> int:
        """Pages still awaiting replay (0 once closed)."""
        return 0 if self.closed else len(self._pending)

    # -- replay entry points -------------------------------------------

    def fault(self, page_id: str) -> bool:
        """First-access replay, called by ``BufferPool.get_page`` under
        the pool mutex (= :attr:`lock`).  Replays the page's conflict
        group and reports whether anything was pending.  Re-entrant
        faults from inside a replay (the replay's own page reads) find
        their pages already popped and fall through.
        """
        if self.closed or page_id not in self._pending:
            return False
        self._replay_group(page_id)
        self._finish_if_drained()
        return True

    def step(self) -> bool:
        """Retire the next pending group in recLSN order; False when
        nothing is left (the drainer thread's loop condition)."""
        with self.lock:
            if self.closed:
                return False
            while self._cursor < len(self._order):
                page_id = self._order[self._cursor]
                self._cursor += 1
                if page_id in self._pending:
                    self._replay_group(page_id)
                    self._finish_if_drained()
                    return True
            self._finish_if_drained()
            return False

    def drain(self) -> None:
        """Replay everything still pending, synchronously."""
        with self.lock:
            while not self.closed and self._pending:
                self._replay_group(next(iter(self._pending)))
            self._finish_if_drained()

    def close(self) -> None:
        """Abandon the backlog (crash/shutdown): detach the fault hook
        and drop pending pages — their records stay in the log for the
        next incarnation's analysis."""
        with self.lock:
            self.closed = True
            self._detach()

    # -- internals ------------------------------------------------------

    def _replay_group(self, page_id: str) -> None:
        members = self._components.get(page_id)
        group = (
            [m for m in members if m in self._pending]
            if members is not None
            else [page_id]
        )
        starts = {member: self._pending.pop(member) for member in group}
        entries = []
        seen: set[int] = set()
        for member in group:
            for base, offset, lsn in self.index.chain(member, starts[member]):
                # A multi-page record sits in every written member's
                # chain; replay it once, at its global LSN position.
                if lsn not in seen:
                    seen.add(lsn)
                    entries.append((base, offset, lsn))
        entries.sort(key=lambda entry: entry[2])
        records = self.method.machine.log.fetch_chain(entries)
        for record in records:
            self._apply(record)
        self.records_fetched += len(records)
        self.pages_replayed += len(group)

    def _finish_if_drained(self) -> None:
        if not self._pending and not self.closed:
            self.closed = True
            self._detach()

    def _detach(self) -> None:
        pool = self.method.machine.pool
        if pool.page_fault == self.fault:
            pool.page_fault = None


class SuffixLazyPlan:
    """Logical recovery's lazy plan: one chain, drained on first touch.

    ``entries`` is the global logical chain (everything after the root
    pointer's checkpoint LSN); ``backlog`` counts its remaining records.
    :meth:`step` replays one batch (the background drainer's unit);
    :meth:`drain` is the foreground gate — re-entrant calls from inside
    a replayed record's own page access are absorbed by the ``_active``
    latch, because the outer drain is already consuming the suffix in
    LSN order.
    """

    BATCH = 64

    def __init__(
        self,
        method: "RecoveryMethodKV",
        entries: list[tuple[int, int, int]],
        apply_record: Callable[[LogRecord], None],
    ):
        self.method = method
        self.lock = method.machine.pool.mutex
        self._apply = apply_record
        self._entries = entries
        self._cursor = 0
        self._active = False
        self.records_total = len(entries)
        self.records_fetched = 0
        self.closed = False

    @property
    def done(self) -> bool:
        return self.closed or self._cursor >= len(self._entries)

    def backlog(self) -> int:
        """Records still awaiting replay (0 once closed)."""
        return 0 if self.closed else len(self._entries) - self._cursor

    def step(self) -> bool:
        """Replay one batch; False when the suffix is exhausted."""
        with self.lock:
            if self.done or self._active:
                return False
            self._replay_batch()
            return True

    def drain(self) -> None:
        """Replay the whole remaining suffix (the foreground gate)."""
        with self.lock:
            if self._active:
                return
            while not self.done:
                self._replay_batch()

    def close(self) -> None:
        """Abandon the rest of the suffix (crash/shutdown)."""
        with self.lock:
            self.closed = True

    def _replay_batch(self) -> None:
        batch = self._entries[self._cursor : self._cursor + self.BATCH]
        self._cursor += len(batch)
        self._active = True
        try:
            for record in self.method.machine.log.fetch_chain(batch):
                self._apply(record)
        finally:
            self._active = False
        self.records_fetched += len(batch)
