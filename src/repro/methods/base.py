"""Common machinery for the §6 recovery-method engines.

A :class:`Machine` bundles one node's disk, log, and cache, with the
standard failure semantics: :meth:`Machine.crash` drops the cache and the
volatile log tail and leaves the disk alone.

:class:`RecoveryMethodKV` is the contract every method implements.  All
methods store key-value pairs hashed across a fixed set of data pages, so
their log volumes, IO counts, and recovery work are directly comparable —
the E5 benchmarks rely on this.

The durability contract shared by all methods: after ``crash()`` +
``recover()``, the visible key-value state equals the result of applying
exactly the operations whose log records were stable at the crash
(``durable_count()`` of them, a prefix of the operation stream).
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.cache import BufferPool
from repro.logmgr import LogManager
from repro.obs.progress import NULL_PROGRESS, RecoveryProgress
from repro.obs.trace import NULL_TRACER, Tracer
from repro.storage import Disk


@dataclass
class MethodStats:
    """Counters the benchmarks report for each method."""

    operations: int = 0
    checkpoints: int = 0
    records_scanned: int = 0
    records_replayed: int = 0
    records_skipped: int = 0
    recoveries: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for benchmark reports)."""
        return {
            "operations": self.operations,
            "checkpoints": self.checkpoints,
            "records_scanned": self.records_scanned,
            "records_replayed": self.records_replayed,
            "records_skipped": self.records_skipped,
            "recoveries": self.recoveries,
        }


class Machine:
    """One simulated node: disk (stable), log and cache (volatile tail).

    By default the log is in-memory with a simulated stable boundary.
    Pass ``log_dir`` to put the log on real files (binary segment files
    with fsync — see :mod:`repro.logmgr.filelog`); ``group_commit=N``
    then lets N forces share one fsync, and ``fsync=False`` keeps the
    file format but skips the syscall.  ``disk``/``log`` accept prebuilt
    components, which is how cold-start recovery injects a crash
    survivor's disk image and a :meth:`LogManager.open`-rebuilt log.
    """

    def __init__(
        self,
        cache_capacity: int = 16,
        cache_policy: str = "lru",
        enforce_wal: bool = True,
        log_segment_size: int | None = None,
        install_policy: str = "graph",
        tracer: Tracer | None = None,
        log_dir=None,
        group_commit: int = 1,
        fsync: bool = True,
        disk: Disk | None = None,
        log: LogManager | None = None,
        progress: RecoveryProgress | None = None,
    ):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.progress = progress if progress is not None else NULL_PROGRESS
        self.disk = disk if disk is not None else Disk()
        if log is not None:
            # A prebuilt manager (e.g. LogManager.open's cold start).
            self.log = log
        else:
            log_kwargs: dict = {
                "tracer": self.tracer,
                "group_commit": group_commit,
            }
            if log_segment_size is not None:
                log_kwargs["segment_size"] = log_segment_size
            if log_dir is not None:
                from repro.logmgr.filelog import FileLogStore

                log_kwargs["store"] = FileLogStore(log_dir, fsync=fsync)
            self.log = LogManager(**log_kwargs)
        self.enforce_wal = enforce_wal
        self.pool = BufferPool(
            self.disk,
            self.log if enforce_wal else None,
            capacity=cache_capacity,
            policy=cache_policy,  # type: ignore[arg-type]
            install_policy=install_policy,  # type: ignore[arg-type]
            tracer=self.tracer,
        )
        self.crashed = False

    def crash(self) -> None:
        """Lose everything volatile: cached pages and the log tail."""
        self.pool.crash()
        self.log.crash()
        self.crashed = True

    def reboot_pool(self) -> None:
        """A fresh (empty) buffer pool for the recovered incarnation."""
        self.pool = BufferPool(
            self.disk,
            self.log if self.enforce_wal else None,
            capacity=self.pool.capacity,
            policy=self.pool.policy,  # type: ignore[arg-type]
            install_policy=self.pool.install_policy,  # type: ignore[arg-type]
            tracer=self.tracer,
        )
        self.crashed = False


def page_of(key: str, n_pages: int, prefix: str = "data") -> str:
    """Deterministic key-to-page placement (crc32, not Python's salted hash)."""
    return f"{prefix}{zlib.crc32(key.encode()) % n_pages:03d}"


class RecoveryMethodKV(ABC):
    """A recoverable key-value store driven by one recovery discipline."""

    name = "abstract"

    def __init__(self, machine: Machine | None = None, n_pages: int = 8):
        self.machine = machine if machine is not None else Machine()
        self.n_pages = n_pages
        self.stats = MethodStats()

    @property
    def tracer(self) -> Tracer:
        """The machine's tracer (the :data:`~repro.obs.trace.NULL_TRACER`
        unless the engine was constructed with tracing on)."""
        return self.machine.tracer

    # -- the KV interface ------------------------------------------------

    @abstractmethod
    def put(self, key: str, value: Any) -> None:
        """Durably-loggable upsert."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Durably-loggable removal."""

    @abstractmethod
    def add(self, key: str, delta: int) -> None:
        """Durably-loggable read-modify-write: key <- (key or 0) + delta.

        The interesting operation of the suite: it *reads*.  How each
        method logs it is where the §6 disciplines genuinely diverge —
        physical logging computes the result and logs it blindly, while
        logical and physiological logging replay the read at recovery.
        """

    @abstractmethod
    def get(self, key: str) -> Any:
        """Read through the cache (None if absent)."""

    def copyadd(self, dst: str, src: str, delta: int) -> None:
        """Cross-key derivation: dst <- (src or 0) + delta.

        Reads one key, writes another — the operation shape that creates
        write-read edges between *different* variables.  Physical logging
        supports it trivially (log the computed result blindly); logical
        logging replays the read.  Physiological logging cannot express
        it when the keys live on different pages — one-page records are
        its defining restriction (§6.3), and lifting it is precisely what
        §6.4's generalized operations are for.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support cross-key operations"
        )

    def apply(self, command: tuple) -> Any:
        """Run one workload command (kind, key, value)."""
        kind, key, value = command
        if kind == "put":
            return self.put(key, value)
        if kind == "add":
            return self.add(key, value)
        if kind == "copyadd":
            src, delta = value
            return self.copyadd(key, src, delta)
        if kind == "delete":
            return self.delete(key)
        if kind == "get":
            return self.get(key)
        raise ValueError(f"unknown command kind {kind!r}")

    # -- durability control ----------------------------------------------

    @abstractmethod
    def checkpoint(self) -> None:
        """Take a checkpoint (method-specific)."""

    def commit(self) -> None:
        """Force the log: everything issued so far becomes durable."""
        self.machine.log.flush()

    def quiesce(self) -> None:
        """Make the current state wholly stable *without logging*: barrier-
        force the log, then flush every dirty page, so the disk image plus
        the segment files alone reconstruct this exact state.

        Unlike :meth:`checkpoint` this appends nothing, so quiescing is
        idempotent — repeated quiesce/cold-start cycles stay byte-
        identical, which is what the sharded deployment's process-parallel
        cold start relies on: a child process recovers a shard, quiesces
        it, and ships the disk image; the parent re-opens the same segment
        directory without replaying and must land on the same bytes.
        Methods with volatile state outside the buffer pool (logical's
        object cache) override this.
        """
        self.machine.log.flush(barrier=True)
        self.machine.pool.flush_all()

    @abstractmethod
    def durable_count(self) -> int:
        """How many operations would survive a crash right now."""

    def truncation_point(self) -> int:
        """The LSN below which recovery will never read (method-specific;
        -1 when no checkpoint has established one).

        For checkpoint-cutoff methods this is the last stable checkpoint;
        LSN-test methods must also stay below the oldest recLSN their
        next analysis pass could reconstruct.
        """
        return -1

    def truncate_log(self) -> int:
        """Checkpoint-based log truncation: retire sealed segments below
        :meth:`truncation_point`.  Returns the number of records retired.

        Truncated segments flow to the manager's archive sink if one is
        installed; without a sink, media recovery (``full_scan=True``)
        only covers what the backup plus the retained suffix explain, so
        engines that want both bounded memory and media recovery must
        archive (the standard separate-media assumption).
        """
        point = self.truncation_point()
        if point <= 0:
            return 0
        return self.machine.log.truncate_until(point)

    # -- crash / recovery --------------------------------------------------

    def crash(self) -> None:
        """Crash the underlying machine (cache + log tail lost)."""
        self.machine.crash()

    @abstractmethod
    def recover(self, full_scan: bool = False) -> None:
        """Rebuild a consistent state from the disk and the stable log.

        ``full_scan=True`` ignores checkpoint shortcuts and scans the log
        from its head — required for media recovery, where the restored
        disk is *older* than the last checkpoint and the analysis-derived
        redo start point would skip work the backup has not seen.  Sound
        for every method: blind physical replays are always harmless, and
        LSN tests bypass whatever the backup does contain.
        """

    def begin_lazy_recovery(self):
        """Analysis-only restart: run the analysis phase, defer redo.

        Returns a lazy plan (:mod:`repro.methods.lazy`) whose pages
        replay on first access while a background drainer retires the
        backlog — or None when this method has no lazy path, in which
        case the caller falls back to eager :meth:`recover`.  After the
        plan drains, the state is identical to what eager recovery
        would have produced.
        """
        return None

    # -- media failure ---------------------------------------------------

    def backup(self) -> dict:
        """A fuzzy online backup: a snapshot of the stable state.

        Any instant's disk image works — it is explained by whatever
        prefix of the installation graph was installed when the snapshot
        was cut, so Theorem 3 says replaying the surviving log recovers.
        The log is assumed to live on separate media (the standard
        archive assumption).
        """
        return self.machine.disk.snapshot()

    def media_failure(self) -> None:
        """The disk is destroyed; cache and volatile log tail go with it.
        The stable log survives on its own device."""
        from repro.storage import Disk

        self.machine.crash()
        self.machine.disk = Disk()
        self.machine.reboot_pool()

    def restore_from_backup(self, backup: dict) -> None:
        """Media recovery: lay down the backup image, then redo the whole
        surviving log against it."""
        for page in backup.values():
            self.machine.disk.write_page(page)
        self.recover(full_scan=True)

    # -- theory audit ------------------------------------------------------

    def theory_audit(self, instant: int = -1):
        """Evaluate the Recovery Invariant for this engine right now.

        Convenience wrapper over :mod:`repro.sim.audit` (imported lazily
        to keep methods importable without the sim layer): lifts the
        stable log to abstract operations, builds the incremental
        conflict/installation graphs, simulates this method's redo
        decision, and checks that the not-redone operations induce an
        installation-graph prefix explaining the stable state.  For
        repeated audits keep an ``AuditTracker`` (or use
        ``KVDatabase(track_theory=True)``) so the graphs carry over.
        """
        from repro.sim.audit import AuditTracker

        return AuditTracker(self).audit(instant)

    # -- inspection --------------------------------------------------------

    def page_of(self, key: str) -> str:
        """The data page this method stores ``key`` on."""
        return page_of(key, self.n_pages)

    def dump(self) -> dict[str, Any]:
        """The full visible key-value mapping (for oracle comparison)."""
        result: dict[str, Any] = {}
        for index in range(self.n_pages):
            page_id = f"data{index:03d}"
            try:
                page = self.machine.pool.get_page(page_id)
            except KeyError:
                continue
            for cell, value in page:
                result[cell] = value
        return result

    def log_bytes(self) -> int:
        """Total log bytes this method has appended."""
        return self.machine.log.total_bytes()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(pages={self.n_pages}, ops={self.stats.operations})"
