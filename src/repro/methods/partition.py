"""Partition-aware redo: per-page replay, optionally concurrent (§5, §6).

**Why this is sound.**  Theorem 3 says recovery may replay the
unrecovered operations in *any* order consistent with the conflict
graph — log order is merely one convenient linearization.  Physical and
physiological operations read and write exactly one page, so two records
naming different pages share no variables and have no conflict edge
between them; in installation-graph terms, each page's record chain is
an independent component.  Any interleaving that preserves per-page log
order is therefore a legal replay schedule, and the per-page schedules
touch disjoint state, so running them concurrently produces the same
final state as the sequential scan — byte for byte (the streaming
benchmark asserts exactly this equivalence).

Multi-page (§6.4) and logical (§6.1) records *do* read across
partitions, which is why :class:`~repro.methods.generalized.GeneralizedKV`
and :class:`~repro.methods.logical.LogicalKV` keep the sequential path:
their conflict graphs have cross-page edges that a per-page partition
would cut.

**Mechanics.**  A planning pass buckets the redo suffix by page id (one
streaming scan).  Each partition worker reads its page image from the
crash-surviving disk, replays its records in log order through the
method's redo test, and returns the rebuilt page; workers share nothing
but the read-only disk, so the opt-in :class:`ThreadPoolExecutor`
schedule needs no locks.  The caller then installs the rebuilt pages
into its buffer pool on the coordinating thread.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.logmgr.records import LogRecord, PhysicalRedo, PhysiologicalRedo
from repro.storage.disk import Disk
from repro.storage.page import Page

# apply_record(page, record) -> replayed?  It must embed the method's
# redo test (LSN comparison for physiological, blind install for
# physical) and mutate only the page it is given.
ApplyFn = Callable[[Page, LogRecord], bool]


@dataclass
class PartitionedRedoResult:
    """What one partitioned redo pass did."""

    pages: dict[str, Page] = field(default_factory=dict)
    rec_lsns: dict[str, int] = field(default_factory=dict)  # first replayed LSN per page
    scanned: int = 0
    replayed: int = 0
    skipped: int = 0


def plan_page_partitions(
    records: Iterable[LogRecord],
) -> tuple[dict[str, list[LogRecord]], int]:
    """Bucket single-page redo records by page id, preserving log order
    within each bucket (one streaming pass over the redo suffix).

    Returns the partitions plus the count of non-partitionable records
    (checkpoints and other bookkeeping), which the caller reports as
    skipped.
    """
    partitions: dict[str, list[LogRecord]] = {}
    others = 0
    for record in records:
        payload = record.payload
        if isinstance(payload, (PhysicalRedo, PhysiologicalRedo)):
            partitions.setdefault(payload.page_id, []).append(record)
        else:
            others += 1
    return partitions, others


def replay_partition(
    disk: Disk,
    page_id: str,
    records: list[LogRecord],
    apply_record: ApplyFn,
) -> tuple[Page, int, int, int | None]:
    """Replay one page's records, in log order, against its disk image.

    Runs entirely on private state: a fresh copy of the page (the disk
    returns snapshots) plus this partition's record list.  Returns the
    rebuilt page, the replayed/skipped counts, and the LSN of the first
    replayed record (the page's recLSN for the dirty-page table, None if
    everything was already installed).
    """
    page = disk.read_page(page_id) if disk.has_page(page_id) else Page(page_id)
    replayed = skipped = 0
    rec_lsn: int | None = None
    for record in records:
        if apply_record(page, record):
            replayed += 1
            if rec_lsn is None:
                rec_lsn = record.lsn
        else:
            skipped += 1
    return page, replayed, skipped, rec_lsn


def partitioned_redo(
    disk: Disk,
    records: Iterable[LogRecord],
    apply_record: ApplyFn,
    max_workers: int | None = None,
) -> PartitionedRedoResult:
    """Drive every page partition through ``apply_record``.

    With ``max_workers`` the partitions run on a thread pool; pages with
    at least one replayed record are returned for installation (pages
    whose every record the redo test bypassed already match the disk and
    need no install).  ``max_workers=None`` runs the partitions inline —
    same plan, same result, no threads.
    """
    partitions, others = plan_page_partitions(records)
    result = PartitionedRedoResult(skipped=others, scanned=others)

    def run_one(item: tuple[str, list[LogRecord]]):
        page_id, bucket = item
        return page_id, replay_partition(disk, page_id, bucket, apply_record), len(bucket)

    if max_workers is not None and len(partitions) > 1:
        with ThreadPoolExecutor(max_workers=min(max_workers, len(partitions))) as pool:
            outcomes = list(pool.map(run_one, partitions.items()))
    else:
        outcomes = [run_one(item) for item in partitions.items()]

    for page_id, (page, replayed, skipped, rec_lsn), scanned in outcomes:
        result.scanned += scanned
        result.replayed += replayed
        result.skipped += skipped
        if replayed:
            result.pages[page_id] = page
            if rec_lsn is not None:
                result.rec_lsns[page_id] = rec_lsn
    return result


def install_pages(pool, result: PartitionedRedoResult) -> None:
    """Install rebuilt partition pages into the buffer pool (single
    threaded — installation mutates shared pool state).

    Each rebuilt page wholesale replaces the pool's working copy: the
    partition worker started from the same disk image the pool would
    load, so the rebuilt page *is* the recovered working copy.

    Adoption dirties the page with its *final* LSN already stamped, so
    the install scheduler's node would otherwise record a recLSN equal
    to the last replayed record; correct it to the partition's true
    recLSN (the first record the worker replayed) so the dirty page
    table and truncation point stay conservative.
    """
    for page_id, rebuilt in result.pages.items():
        def adopt(p: Page, src: Page = rebuilt) -> None:
            p.cells.clear()
            p.cells.update(src.cells)
            if src.lsn > p.lsn:
                p.stamp(src.lsn)

        pool.update(page_id, adopt, create=True)
        if page_id in result.rec_lsns:
            pool.scheduler.set_rec_lsn(page_id, result.rec_lsns[page_id])
