"""Physiological recovery (§6.3).

A physiological operation reads and writes exactly one page: a
"physical" page identifier plus a "logical" action on that page.  Every
page carries the LSN of the last operation that updated it, and the redo
test compares the page tag with the record LSN:

    page.lsn >= record.lsn  ⇒  the operation is installed; bypass it.

Because each operation touches one page, the write graph is an initial
(stable-state) node plus one independent node per page — the cache may
flush pages in *any* order (steal, no-force).  Flushing a page collapses
its node into the stable node, which bumps the stable page's LSN tag and
thereby removes the flushed operations from ``redo_set``: state change
and ``redo_set`` change are the same atomic page write, so the recovery
invariant is maintained — the §6.3 argument, executable.

Checkpoints are ARIES-flavored and *fuzzy*: a checkpoint record carries
a snapshot of the dirty page table (page -> recLSN) and flushes nothing.
Recovery begins with an **analysis phase** (§4.3): starting from the
last checkpoint's table, it scans forward adding pages dirtied since,
and the redo scan then starts at the reconstructed table's minimum
recLSN.  This is the paper's ``analyze`` function made concrete — the
analysis result is a data structure, not just a log position.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.logmgr import (
    CheckpointRecord,
    LogEntry,
    MultiPageRedo,
    PageAction,
    PhysiologicalRedo,
)
from repro.methods.base import Machine, RecoveryMethodKV


def analysis_pass(entries: Iterable[LogEntry]) -> tuple[dict[str, int], int]:
    """The §4.3 analysis phase for LSN-based methods.

    Returns the reconstructed dirty page table and the redo start point.
    The table starts from the last checkpoint's logged snapshot and is
    extended by every page-dirtying record after that checkpoint; the
    redo scan starts at the minimum recLSN in the table (or just after
    the checkpoint if the table is empty).
    """
    entries = list(entries)
    checkpoint_lsn = -1
    table: dict[str, int] = {}
    for entry in entries:
        if isinstance(entry.payload, CheckpointRecord):
            checkpoint_lsn = entry.lsn
            table = dict(entry.payload.data[1])
    for entry in entries:
        if entry.lsn <= checkpoint_lsn:
            continue
        if isinstance(entry.payload, PhysiologicalRedo):
            table.setdefault(entry.payload.page_id, entry.lsn)
        elif isinstance(entry.payload, MultiPageRedo):
            for page_id in entry.payload.writes:
                table.setdefault(page_id, entry.lsn)
    redo_start = min(table.values(), default=checkpoint_lsn + 1)
    return table, redo_start


class PhysiologicalKV(RecoveryMethodKV):
    """Key-value store recovered by page-LSN physiological logging."""

    name = "physiological"

    def __init__(
        self,
        machine: Machine | None = None,
        n_pages: int = 8,
        sharp_checkpoints: bool = False,
    ):
        super().__init__(machine, n_pages)
        # Dirty page table: page_id -> recLSN (the LSN that first dirtied
        # the page since it was last clean).  Kept honest by the pool's
        # flush observer, so stolen flushes advance the redo start point.
        self._dirty_table: dict[str, int] = {}
        # Sharp checkpoints flush every dirty page first, buying minimal
        # recovery work at the cost of checkpoint IO; the default fuzzy
        # checkpoint just records the redo start point.
        self.sharp_checkpoints = sharp_checkpoints
        self.machine.pool.on_flush = self._note_flush

    def _note_flush(self, page_id: str) -> None:
        self._dirty_table.pop(page_id, None)

    # ------------------------------------------------------------------
    # Normal operation
    # ------------------------------------------------------------------

    def _log_and_apply(self, page_id: str, action: PageAction) -> None:
        entry = self.machine.log.append(PhysiologicalRedo(page_id, action))
        self._dirty_table.setdefault(page_id, entry.lsn)
        self.machine.pool.update(
            page_id, lambda p: action.apply_to(p, lsn=entry.lsn), create=True
        )
        self.stats.operations += 1

    def put(self, key: str, value: Any) -> None:
        self._log_and_apply(self.page_of(key), PageAction("put", (key, value)))

    def delete(self, key: str) -> None:
        self._log_and_apply(self.page_of(key), PageAction("delete", (key,)))

    def add(self, key: str, delta: int) -> None:
        """A page-logical read-modify-write.  The record carries only the
        delta; replay *re-reads the page*, which is exactly why the LSN
        redo test must be exact — replaying an installed add would
        double-apply it (see examples/invariant_checker.py)."""
        self._log_and_apply(self.page_of(key), PageAction("add", (key, delta)))

    def get(self, key: str) -> Any:
        try:
            return self.machine.pool.get_page(self.page_of(key)).get(key)
        except KeyError:
            return None

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Log a dirty-page-table snapshot; fuzzy checkpoints flush nothing."""
        if self.sharp_checkpoints:
            self.machine.log.flush()
            self.machine.pool.flush_all()
        snapshot = tuple(sorted(self._dirty_table.items()))
        self.machine.log.append(CheckpointRecord(("physiological", snapshot)))
        self.machine.log.flush()
        self.stats.checkpoints += 1

    def durable_count(self) -> int:
        return sum(
            1
            for entry in self.machine.log.stable_entries()
            if isinstance(entry.payload, PhysiologicalRedo)
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self, full_scan: bool = False) -> None:
        """Analysis: reconstruct the dirty page table from the last
        checkpoint and the log suffix.  Redo: scan from the table's
        minimum recLSN applying the LSN test per record.  Media recovery
        (``full_scan``) scans from the head: the LSN test bypasses
        whatever the restored backup already holds."""
        self.machine.reboot_pool()
        self.machine.pool.on_flush = self._note_flush
        self._dirty_table.clear()

        stable = self.machine.log.entries(volatile=False)
        _, redo_start = analysis_pass(stable)
        if full_scan:
            redo_start = 0

        pool = self.machine.pool
        for entry in stable:
            self.stats.records_scanned += 1
            if entry.lsn < redo_start or not isinstance(entry.payload, PhysiologicalRedo):
                self.stats.records_skipped += 1
                continue
            payload = entry.payload
            page = pool.get_page(payload.page_id, create=True)
            if page.lsn >= entry.lsn:
                # THE redo test: the page tag says this operation's effect
                # is already installed in the stable state.
                self.stats.records_skipped += 1
                continue
            self._dirty_table.setdefault(payload.page_id, entry.lsn)
            pool.update(
                payload.page_id,
                lambda p, a=payload.action, l=entry.lsn: a.apply_to(p, lsn=l),
            )
            self.stats.records_replayed += 1
        self.stats.recoveries += 1
