"""Physiological recovery (§6.3).

A physiological operation reads and writes exactly one page: a
"physical" page identifier plus a "logical" action on that page.  Every
page carries the LSN of the last operation that updated it, and the redo
test compares the page tag with the record LSN:

    page.lsn >= record.lsn  ⇒  the operation is installed; bypass it.

Because each operation touches one page, the write graph is an initial
(stable-state) node plus one independent node per page — the cache may
flush pages in *any* order (steal, no-force).  Flushing a page collapses
its node into the stable node, which bumps the stable page's LSN tag and
thereby removes the flushed operations from ``redo_set``: state change
and ``redo_set`` change are the same atomic page write, so the recovery
invariant is maintained — the §6.3 argument, executable.

Checkpoints are ARIES-flavored and *fuzzy*: a checkpoint record carries
a snapshot of the dirty page table (page -> recLSN) and flushes nothing.
Recovery begins with an **analysis phase** (§4.3): starting from the
last checkpoint's table, it scans forward adding pages dirtied since,
and the redo scan then starts at the reconstructed table's minimum
recLSN.  This is the paper's ``analyze`` function made concrete — the
analysis result is a data structure, not just a log position.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.logmgr import (
    CheckpointRecord,
    LogRecord,
    MultiPageRedo,
    PageAction,
    PhysiologicalRedo,
)
from repro.methods.base import Machine, RecoveryMethodKV
from repro.methods.partition import install_pages, partitioned_redo
from repro.obs.trace import traced_segments
from repro.storage.page import Page


def analysis_pass(records: Iterable[LogRecord]) -> tuple[dict[str, int], int]:
    """The §4.3 analysis phase for LSN-based methods, as one streaming pass.

    Returns the reconstructed dirty page table and the redo start point.
    The table starts from the last checkpoint's logged snapshot and is
    extended by every page-dirtying record after that checkpoint; the
    redo scan starts at the minimum recLSN in the table (or just after
    the checkpoint if the table is empty).

    ``records`` is consumed exactly once, in LSN order: a checkpoint
    record *replaces* the accumulated table with its snapshot (records
    before the checkpoint that still matter are in the snapshot by the
    checkpointer's contract), so feeding the whole log and feeding only
    the suffix from the last stable checkpoint reconstruct the same
    table.  Callers on the hot path pass
    ``log.stable_records_from(log.last_stable_checkpoint_lsn)`` and
    never materialize a record list.
    """
    checkpoint_lsn = -1
    table: dict[str, int] = {}
    for record in records:
        payload = record.payload
        if isinstance(payload, CheckpointRecord):
            checkpoint_lsn = record.lsn
            table = dict(payload.data[1])
        elif isinstance(payload, PhysiologicalRedo):
            table.setdefault(payload.page_id, record.lsn)
        elif isinstance(payload, MultiPageRedo):
            for page_id in payload.writes:
                table.setdefault(page_id, record.lsn)
    redo_start = min(table.values(), default=checkpoint_lsn + 1)
    return table, redo_start


class PhysiologicalKV(RecoveryMethodKV):
    """Key-value store recovered by page-LSN physiological logging."""

    name = "physiological"

    def __init__(
        self,
        machine: Machine | None = None,
        n_pages: int = 8,
        sharp_checkpoints: bool = False,
        parallel_recovery: bool = False,
        recovery_workers: int = 4,
    ):
        super().__init__(machine, n_pages)
        # Sharp checkpoints flush every dirty page first, buying minimal
        # recovery work at the cost of checkpoint IO; the default fuzzy
        # checkpoint just records the redo start point.
        self.sharp_checkpoints = sharp_checkpoints
        # Opt-in partitioned redo (see repro.methods.partition): sound
        # because every physiological record touches exactly one page.
        self.parallel_recovery = parallel_recovery
        self.recovery_workers = recovery_workers

    def dirty_table(self) -> dict[str, int]:
        """The ARIES dirty page table (page -> recLSN), read off the
        pool's live write graph: a page's node is born at first dirtying
        (carrying the dirtying LSN) and retired when a flush installs —
        or elides — it, so the scheduler's recLSN view *is* the dirty
        page table.  No parallel bookkeeping, no flush observer."""
        return self.machine.pool.scheduler.rec_lsns()

    # ------------------------------------------------------------------
    # Normal operation
    # ------------------------------------------------------------------

    def _log_and_apply(self, page_id: str, action: PageAction) -> None:
        entry = self.machine.log.append(PhysiologicalRedo(page_id, action))
        self.machine.pool.update(
            page_id, lambda p: action.apply_to(p, lsn=entry.lsn), create=True
        )
        self.stats.operations += 1

    def put(self, key: str, value: Any) -> None:
        self._log_and_apply(self.page_of(key), PageAction("put", (key, value)))

    def delete(self, key: str) -> None:
        self._log_and_apply(self.page_of(key), PageAction("delete", (key,)))

    def add(self, key: str, delta: int) -> None:
        """A page-logical read-modify-write.  The record carries only the
        delta; replay *re-reads the page*, which is exactly why the LSN
        redo test must be exact — replaying an installed add would
        double-apply it (see examples/invariant_checker.py)."""
        self._log_and_apply(self.page_of(key), PageAction("add", (key, delta)))

    def get(self, key: str) -> Any:
        try:
            return self.machine.pool.get_page(self.page_of(key)).get(key)
        except KeyError:
            return None

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Log a dirty-page-table snapshot; fuzzy checkpoints flush nothing."""
        if self.sharp_checkpoints:
            self.machine.log.flush()
            self.machine.pool.flush_all()
        snapshot = tuple(sorted(self.dirty_table().items()))
        self.machine.log.append(CheckpointRecord(("physiological", snapshot)))
        self.machine.log.flush()
        self.stats.checkpoints += 1

    def durable_count(self) -> int:
        return self.machine.log.stable_count_of(PhysiologicalRedo)

    def truncation_point(self) -> int:
        """Truncation is safe below the last stable checkpoint *and*
        every live recLSN: analysis starts at the checkpoint record, and
        redo never reads below the oldest uninstalled update."""
        checkpoint_lsn = self.machine.log.last_stable_checkpoint_lsn
        if checkpoint_lsn < 0:
            return -1
        return min([checkpoint_lsn, *self.dirty_table().values()])

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self, full_scan: bool = False) -> None:
        """Analysis: reconstruct the dirty page table by streaming the
        stable checkpoint suffix (one pass, no record list).  Redo:
        stream again from the table's minimum recLSN applying the LSN
        test per record — peak resident records stay O(segment), not
        O(log).  Media recovery (``full_scan``) scans from the head: the
        LSN test bypasses whatever the restored backup already holds.
        Both passes run on a file-backed log too, re-decoding evicted
        segments from their binary files — the two-scan shape costs two
        streaming decodes of the suffix, never a materialized log.

        With ``parallel_recovery`` the redo suffix is partitioned by
        page and replayed concurrently; per-partition log order plus
        page-disjointness make that schedule conflict-order consistent,
        so Theorem 3 guarantees the same final state as the sequential
        scan (see :mod:`repro.methods.partition`).
        """
        tracer = self.tracer
        progress = self.machine.progress
        span = tracer.span("recovery", method=self.name, full_scan=full_scan)
        before = self.stats.as_dict()
        self.machine.reboot_pool()

        log = self.machine.log
        scan_from = 0 if full_scan else max(0, log.last_stable_checkpoint_lsn)
        if progress.enabled:
            progress.set_phase("analysis")
        analysis = tracer.span("recovery.analysis", scan_from=scan_from)
        table, redo_start = analysis_pass(log.stable_records_from(scan_from))
        if full_scan:
            redo_start = 0
        analysis.end(redo_start=redo_start, dirty_pages=len(table))

        if self.parallel_recovery:
            self._redo_partitioned(redo_start)
        else:
            self._redo_sequential(redo_start)
        self.stats.recoveries += 1
        span.end(
            redo_start=redo_start,
            scanned=self.stats.records_scanned - before["records_scanned"],
            replayed=self.stats.records_replayed - before["records_replayed"],
            skipped=self.stats.records_skipped - before["records_skipped"],
        )
        if progress.enabled:
            progress.finish()

    def begin_lazy_recovery(self):
        """Analysis off the per-page index, redo deferred to first touch.

        The reconstructed dirty page table is the same one
        :func:`analysis_pass` streams out — checkpoint snapshot plus
        first post-checkpoint dirtying per page — but read from chain
        metadata instead of a record scan.  Each faulted page replays
        its own chain under the identical page-LSN test, so the drained
        state matches the eager scan record for record; records below a
        page's recLSN are exactly the ones whose LSN test would have
        skipped them, so never fetching them changes nothing.
        """
        from repro.methods.lazy import PagewiseLazyPlan, lsn_table_analysis

        tracer = self.tracer
        progress = self.machine.progress
        span = tracer.span("recovery.lazy", method=self.name)
        self.machine.reboot_pool()
        if progress.enabled:
            progress.set_phase("analysis")
        index, table = lsn_table_analysis(self.machine.log)
        pool = self.machine.pool

        def apply_record(record: LogRecord) -> None:
            self.stats.records_scanned += 1
            payload = record.payload
            if not isinstance(payload, PhysiologicalRedo):
                self.stats.records_skipped += 1
                return
            page = pool.get_page(payload.page_id, create=True)
            if page.lsn >= record.lsn:
                self.stats.records_skipped += 1
                return
            pool.update(
                payload.page_id,
                lambda p, a=payload.action, l=record.lsn: a.apply_to(p, lsn=l),
            )
            self.stats.records_replayed += 1

        plan = PagewiseLazyPlan(self, index, table, apply_record)
        self.stats.recoveries += 1
        span.end(backlog=plan.backlog(), dirty_pages=len(table))
        return plan

    def _redo_sequential(self, redo_start: int) -> None:
        pool = self.machine.pool
        tracer = self.tracer
        progress = self.machine.progress
        records = self.machine.log.stable_records_from(redo_start)
        if progress.enabled:
            progress.set_phase("redo")
            records = progress.watch(records, log=self.machine.log, stats=self.stats)
        if tracer.enabled:
            records = traced_segments(tracer, self.machine.log, records)
        for record in records:
            self.stats.records_scanned += 1
            if not isinstance(record.payload, PhysiologicalRedo):
                self.stats.records_skipped += 1
                if tracer.enabled:
                    tracer.event(
                        "recovery.record",
                        lsn=record.lsn,
                        decision="skipped",
                        reason="not_redo_payload",
                    )
                continue
            payload = record.payload
            page = pool.get_page(payload.page_id, create=True)
            if page.lsn >= record.lsn:
                # THE redo test: the page tag says this operation's effect
                # is already installed in the stable state.
                self.stats.records_skipped += 1
                if tracer.enabled:
                    tracer.event(
                        "recovery.record",
                        lsn=record.lsn,
                        decision="skipped",
                        reason="lsn_test",
                        page=payload.page_id,
                        page_lsn=page.lsn,
                    )
                continue
            pool.update(
                payload.page_id,
                lambda p, a=payload.action, l=record.lsn: a.apply_to(p, lsn=l),
            )
            self.stats.records_replayed += 1
            if tracer.enabled:
                tracer.event(
                    "recovery.record",
                    lsn=record.lsn,
                    decision="replayed",
                    page=payload.page_id,
                )

    def _redo_partitioned(self, redo_start: int) -> None:
        def apply_record(page: Page, record: LogRecord) -> bool:
            if page.lsn >= record.lsn:
                return False  # the same LSN redo test, per partition
            record.payload.action.apply_to(page, lsn=record.lsn)
            return True

        result = partitioned_redo(
            self.machine.disk,
            self.machine.log.stable_records_from(redo_start),
            apply_record,
            max_workers=self.recovery_workers,
        )
        install_pages(self.machine.pool, result)
        self.stats.records_scanned += result.scanned
        self.stats.records_replayed += result.replayed
        self.stats.records_skipped += result.skipped
        if self.tracer.enabled:
            # Worker threads replay concurrently; the coordinating thread
            # emits one summary event instead of per-record events.
            self.tracer.event(
                "recovery.partitioned",
                scanned=result.scanned,
                replayed=result.replayed,
                skipped=result.skipped,
                workers=self.recovery_workers,
            )
